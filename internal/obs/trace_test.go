package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTraceDisabledByDefault pins the tracing default: no sampling, so
// StartTrace hands out only zero IDs and nothing is retained.
func TestTraceDisabledByDefault(t *testing.T) {
	ResetTrace()
	if got := TraceSampleRate(); got != 0 {
		t.Fatalf("default trace sample rate = %d, want 0 (disabled)", got)
	}
	for i := 0; i < 100; i++ {
		if id := StartTrace(); id != 0 {
			t.Fatalf("StartTrace returned %d with sampling disabled", id)
		}
	}
	if RecordSpan(0, 0, 0, SpanIterScan, 1, 2, 3, 4) != 0 {
		t.Fatal("RecordSpan with zero trace must be a no-op returning 0")
	}
	if spans := Spans(); len(spans) != 0 {
		t.Fatalf("retained %d spans with tracing disabled, want 0", len(spans))
	}
}

// TestTraceRecordAndDump records a small parent/child tree and checks
// the dump's content and ordering.
func TestTraceRecordAndDump(t *testing.T) {
	if !Enabled {
		t.Skip("tracing compiled out under obsoff")
	}
	ResetTrace()
	tr := ForceTrace()
	if tr == 0 {
		t.Fatal("ForceTrace returned 0 in an enabled build")
	}
	root := NewSpanID(tr)
	if root == 0 {
		t.Fatal("NewSpanID returned 0 for a live trace")
	}
	child := RecordSpan(tr, 0, root, SpanIterScan, 100, 50, 7, 3)
	if child == 0 {
		t.Fatal("RecordSpan returned 0 for a live trace")
	}
	if got := RecordSpan(tr, root, 0, SpanEngineRound, 90, 80, 1, 0); got != root {
		t.Fatalf("RecordSpan with pre-issued id returned %d, want %d", got, root)
	}
	spans := Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Sorted by start time: the round (90) before the scan (100).
	if spans[0].Site != "engine.round" || spans[1].Site != "iter.scan" {
		t.Fatalf("dump order = %s, %s; want engine.round, iter.scan", spans[0].Site, spans[1].Site)
	}
	if spans[0].Span != root || spans[0].Parent != 0 {
		t.Fatalf("root span identity = span %d parent %d, want span %d parent 0", spans[0].Span, spans[0].Parent, root)
	}
	if spans[1].Parent != root {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, root)
	}
	if spans[1].Trace != tr || spans[0].Trace != tr {
		t.Fatal("spans lost their trace ID")
	}
	if spans[1].Arg0 != 7 || spans[1].Arg1 != 3 || spans[1].DurNanos != 50 {
		t.Fatalf("child payload = arg0 %d arg1 %d dur %d, want 7, 3, 50", spans[1].Arg0, spans[1].Arg1, spans[1].DurNanos)
	}
	ResetTrace()
	if len(Spans()) != 0 {
		t.Fatal("ResetTrace left spans behind")
	}
}

// TestTraceSamplingGate checks the power-of-two gate: rate 1 samples
// every trace, and restoring rate 0 turns the gate back off.
func TestTraceSamplingGate(t *testing.T) {
	if !Enabled {
		t.Skip("tracing compiled out under obsoff")
	}
	ResetTrace()
	prev := SetTraceSampleRate(1)
	defer SetTraceSampleRate(prev)
	if prev != 0 {
		t.Fatalf("previous rate = %d, want 0", prev)
	}
	for i := 0; i < 10; i++ {
		if StartTrace() == 0 {
			t.Fatal("StartTrace returned 0 at sample rate 1")
		}
	}
	if got := SetTraceSampleRate(4); got != 1 {
		t.Fatalf("SetTraceSampleRate returned previous %d, want 1", got)
	}
	if got := TraceSampleRate(); got != 4 {
		t.Fatalf("TraceSampleRate = %d, want 4", got)
	}
	sampled := 0
	for i := 0; i < 64; i++ {
		if StartTrace() != 0 {
			sampled++
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 traces at rate 4, want 16", sampled)
	}
	SetTraceSampleRate(0)
	if StartTrace() != 0 {
		t.Fatal("StartTrace returned a trace after disabling sampling")
	}
}

// TestTraceSampleRateRejectsNonPowerOfTwo pins the rate contract.
func TestTraceSampleRateRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetTraceSampleRate(3) did not panic")
		}
	}()
	SetTraceSampleRate(3)
}

// TestTraceRingOverwrite fills the rings past capacity and checks the
// tracer retains at most its fixed capacity, newest spans included.
func TestTraceRingOverwrite(t *testing.T) {
	if !Enabled {
		t.Skip("tracing compiled out under obsoff")
	}
	ResetTrace()
	tr := ForceTrace()
	const total = traceNumShards*traceRingLen + 500
	for i := 0; i < total; i++ {
		RecordSpan(tr, 0, 0, SpanIterScan, int64(i), 1, 0, 0)
	}
	spans := Spans()
	if len(spans) == 0 || len(spans) > traceNumShards*traceRingLen {
		t.Fatalf("retained %d spans, want (0, %d]", len(spans), traceNumShards*traceRingLen)
	}
	ResetTrace()
}

// TestWriteChromeTrace checks the export is well-formed trace_event
// JSON in both build flavours (empty envelope under obsoff).
func TestWriteChromeTrace(t *testing.T) {
	ResetTrace()
	tr := ForceTrace()
	RecordSpan(tr, 0, 0, SpanEngineRule, 1000, 2000, 5, 6)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Trace uint64 `json:"trace"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if !Enabled {
		if len(doc.TraceEvents) != 0 {
			t.Fatalf("obsoff export has %d events, want 0", len(doc.TraceEvents))
		}
		return
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("export has %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "engine.rule" || ev.Ph != "X" {
		t.Fatalf("event = %q ph %q, want engine.rule ph X", ev.Name, ev.Ph)
	}
	if ev.Ts != 1.0 || ev.Dur != 2.0 {
		t.Fatalf("event ts/dur = %v/%v µs, want 1/2", ev.Ts, ev.Dur)
	}
	if ev.Args.Trace != uint64(tr) {
		t.Fatalf("event trace arg = %d, want %d", ev.Args.Trace, tr)
	}
	ResetTrace()
}

// TestSpanSiteNames pins the published site-name list: append-only, so
// every existing name and its position are frozen.
func TestSpanSiteNames(t *testing.T) {
	want := []string{
		"client.request",
		"serve.frame.read",
		"serve.frame.insert",
		"serve.phase.wait",
		"serve.epoch",
		"engine.round",
		"engine.rule",
		"iter.scan",
		"iter.scan.push",
	}
	got := SpanSiteNames()
	if len(got) < len(want) {
		t.Fatalf("SpanSiteNames lost entries: %d < %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("site %d = %q, want %q (published names are frozen)", i, got[i], name)
		}
	}
}

// TestConcurrentSpanRecord hammers the rings from several goroutines
// while a reader dumps, for the race detector.
func TestConcurrentSpanRecord(t *testing.T) {
	ResetTrace()
	tr := ForceTrace()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				RecordSpan(tr, 0, 0, SpanIterScan, int64(g*10000+i), 1, uint64(i), 0)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Spans()
		}
	}()
	wg.Wait()
	ResetTrace()
}
