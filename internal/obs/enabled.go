//go:build !obsoff

package obs

// Enabled reports whether the observability counters are compiled in.
// This is the default build; compiling with -tags obsoff turns every
// Inc/Add into a no-op that the compiler eliminates, for measuring (and
// eliminating) instrumentation overhead.
const Enabled = true
