//go:build obsoff

package obs

// Enabled reports whether the observability counters are compiled in.
// Under the obsoff build tag every Inc/Add is a constant-false branch
// that the compiler removes, so the instrumented hot paths carry zero
// cost. Snapshots still marshal, with Enabled=false and all-zero values.
const Enabled = false
