// Package obs is the observability layer of the specialised B-tree and
// its Datalog engine, in three tiers:
//
//   - a zero-allocation registry of global event counters covering every
//     synchronisation hot path — seqlock validations and failures, lease
//     upgrades, write-lock spins, tree descents and restarts, hint hits
//     and misses per operation class, node splits, and engine-level
//     semi-naïve progress (this file);
//   - log2-bucketed latency and count histograms over the same shards,
//     with sampled clock reads so the distribution tier costs no more
//     than the counters (hist.go);
//   - a contention flight recorder: a fixed-size sampled ring of
//     individual lock-contention events for post-hoc inspection of
//     contention hot spots (flight.go).
//
// The paper's argument rests on micro-events that are invisible in an
// end-to-end runtime number; this package makes them countable in
// production without disturbing the property that makes the hot path
// fast (readers write no shared memory). The registry is sharded
// per goroutine and merged on read, in two tiers:
//
//  1. Shards. The durable cells are numShards padded blocks of atomic
//     counters; a goroutine picks its block by a cheap hash of its own
//     stack address, so concurrent writers rarely share a cache line,
//     and reads merge all blocks. Inc/Add hit these cells directly —
//     correct from any goroutine, but each update is a lock-prefixed
//     instruction, so direct use is reserved for rare events (control
//     plane, spin loops) and batch settlement.
//  2. Batches. Hot paths do not touch shared memory per event. A tree
//     operation accumulates its events in an OpCounts — a plain struct
//     on the operation's stack or inside the goroutine-owned hint set —
//     with non-atomic increments, and the batch is settled into the
//     shards either at operation exit (hint-less operations) or every
//     Batch.flushEvery operations (hinted operations, via Batch). A
//     set-bit mask keeps settlement proportional to the counters
//     actually touched, so the amortised cost per event is a register
//     increment.
//
// No tier allocates per event, and the whole layer compiles out: Enabled
// is a build-time constant (false under the "obsoff" build tag), every
// mutation starts with an `if !Enabled` constant branch, and OpCounts and
// Batch are empty structs in disabled builds.
//
// Deferred batches mean a snapshot taken mid-run can trail the truth by
// up to flushEvery operations per live hint set; every measurement
// boundary in this repository (engine run completion, benchmark worker
// exit, the -metrics dumps) settles outstanding batches first, so
// printed snapshots are exact.
//
// Counter names form a documented, stable contract: the table in
// DESIGN.md §9 lists every name, its unit and the code path that
// increments it, and scripts/check_docs.sh fails the build if the two
// drift apart. Names, once published under SchemaVersion, are
// append-only: they never change meaning or disappear; consumers must
// ignore unknown keys.
package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"unsafe"
)

// SchemaVersion identifies the JSON metrics contract emitted by Take and
// by the -metrics flag of every command. v2 extended v1 append-only with
// the "histograms" section (log2-bucketed latency and count
// distributions, hist.go); v3 extended v2 append-only with the streaming
// query-execution names (datalog.plan.*, datalog.iter.* and the pushdown
// selectivity histogram, DESIGN.md §12); v4 extends v3 append-only with
// the epoch-snapshot names (core.cow.clones, serve.snapshot.reads, the
// gate-bypass histogram and the cow contention sites, DESIGN.md §14);
// v5 extends v4 append-only with the sharded-cluster names (cluster.*
// counters and the log-flush histogram, DESIGN.md §15); v6 extends v5
// append-only with the replication names (replica.* counters and the
// replication-lag histogram, DESIGN.md §16).
// Counter and histogram names under this version are append-only stable
// (see the package comment).
const SchemaVersion = "specbtree.metrics.v6"

// Counter identifies one global event counter. The constants below are
// the complete registry; Name returns the stable string form. Counter
// values must stay below 64 so an OpCounts mask fits one word.
type Counter uint32

// The counter registry. Every constant is documented by its stable name;
// DESIGN.md §9 specifies unit and incrementing code path for each.
const (
	// LockReadValidations counts optimistic read-lease validations
	// ("optlock.read.validations").
	LockReadValidations Counter = iota
	// LockReadValidationFailures counts validations that failed because a
	// writer intervened ("optlock.read.validation_failures").
	LockReadValidationFailures
	// LockUpgradeSuccesses counts read-lease-to-write-lock upgrades that
	// won their CAS ("optlock.upgrade.successes").
	LockUpgradeSuccesses
	// LockUpgradeFailures counts upgrade attempts that lost their CAS
	// ("optlock.upgrade.failures").
	LockUpgradeFailures
	// LockWriteSpins counts spin iterations spent waiting in blocking
	// write-lock acquisitions ("optlock.write.spins").
	LockWriteSpins
	// TreeDescents counts root-to-leaf descents started by the concurrent
	// tree, including restarts ("core.descents").
	TreeDescents
	// TreeRestarts counts descents abandoned because a lease failed to
	// validate ("core.restarts").
	TreeRestarts
	// HintInsertHits counts hinted inserts answered by the cached leaf
	// ("hint.insert.hits").
	HintInsertHits
	// HintInsertMisses counts hinted inserts whose cached leaf did not
	// cover the probe, including cold hints ("hint.insert.misses").
	HintInsertMisses
	// HintFindHits counts hinted membership tests answered by the cached
	// leaf ("hint.find.hits").
	HintFindHits
	// HintFindMisses counts hinted membership tests that fell back to a
	// descent ("hint.find.misses").
	HintFindMisses
	// HintLowerHits counts hinted lower-bound queries answered by the
	// cached leaf ("hint.lower.hits").
	HintLowerHits
	// HintLowerMisses counts hinted lower-bound queries that fell back to
	// a descent ("hint.lower.misses").
	HintLowerMisses
	// HintUpperHits counts hinted upper-bound queries answered by the
	// cached leaf ("hint.upper.hits").
	HintUpperHits
	// HintUpperMisses counts hinted upper-bound queries that fell back to
	// a descent ("hint.upper.misses").
	HintUpperMisses
	// TreeLeafSplits counts leaf-node splits ("core.split.leaf").
	TreeLeafSplits
	// TreeInnerSplits counts inner-node splits ("core.split.inner").
	TreeInnerSplits
	// TreeRootSplits counts root splits; each one grows the tree by one
	// level, so this equals the total tree-height increase
	// ("core.split.root").
	TreeRootSplits
	// EngineRounds counts semi-naïve fixpoint rounds across all strata
	// ("datalog.rounds").
	EngineRounds
	// EngineRuleEvals counts evaluations of semi-naïve rule versions
	// ("datalog.rule_evals").
	EngineRuleEvals
	// EngineDeltaTuples counts tuples promoted into delta relations, i.e.
	// the summed per-round delta sizes ("datalog.delta_tuples").
	EngineDeltaTuples
	// MergeBulkLoads counts tree merges served by the packed bulk-load
	// fast path, taken when the destination is empty
	// ("core.merge.bulk_loads").
	MergeBulkLoads
	// MergeHinted counts tree merges performed by a single hinted insert
	// stream into a non-empty destination ("core.merge.hinted").
	MergeHinted
	// MergeParallelRuns counts parallel tree merges: ParallelInsertAll
	// calls that actually fanned out over partitioned source ranges
	// ("core.merge.parallel_runs").
	MergeParallelRuns
	// MergeParallelWorkers counts the merge worker goroutines launched
	// across all parallel tree merges ("core.merge.parallel_workers").
	MergeParallelWorkers
	// EngineMergeJobs counts relation merge jobs (one per destination
	// index with a non-empty source) executed by the engine's
	// data-movement spine, for both the round-end full<-new merges and the
	// delta snapshot initialisation ("datalog.merge.jobs").
	EngineMergeJobs
	// EngineParallelMerges counts engine merge phases that dispatched
	// their jobs across multiple goroutines ("datalog.merge.parallel").
	EngineParallelMerges
	// ServeReadOps counts read operations (contains, lower/upper bound,
	// scan, len) executed by the relation server ("serve.read.ops").
	ServeReadOps
	// ServeWriteOps counts tuples inserted by the relation server's write
	// epochs ("serve.write.ops").
	ServeWriteOps
	// ServeWriteBatches counts insert batches executed by write epochs
	// ("serve.write.batches").
	ServeWriteBatches
	// ServeEpochs counts write epochs admitted by the phase scheduler
	// ("serve.epochs").
	ServeEpochs
	// ServeRetries counts RETRY responses sent because the write queue was
	// full ("serve.retries").
	ServeRetries
	// ServeConnsAccepted counts client connections accepted by the
	// relation server ("serve.conns.accepted").
	ServeConnsAccepted
	// ServeConnsDropped counts connections dropped by the server for
	// falling behind (bounded outbound queue overflow or write timeout)
	// ("serve.conns.dropped").
	ServeConnsDropped
	// ServePhaseViolations counts detected violations of the phase
	// scheduler's invariant that no read executes concurrently with a
	// write epoch; it must stay zero ("serve.phase.violations").
	ServePhaseViolations
	// EnginePlanCacheHits counts semi-naïve rule versions whose compiled
	// plan was served from the keyed plan cache instead of being
	// recompiled ("datalog.plan.cache_hits").
	EnginePlanCacheHits
	// EnginePlanCacheMisses counts rule versions compiled from scratch
	// because no valid cache entry covered their program
	// ("datalog.plan.cache_misses").
	EnginePlanCacheMisses
	// EnginePlanCacheInvalidations counts plan-cache entries discarded
	// because their recorded index assignment no longer matched the
	// engine's freshly collected search signatures, plus explicit
	// Invalidate calls ("datalog.plan.cache_invalidations").
	EnginePlanCacheInvalidations
	// EngineIterScans counts range cursors opened (Seek calls) by the
	// streaming evaluator's composed join chains
	// ("datalog.iter.scans").
	EngineIterScans
	// EngineIterRows counts tuples pulled through streaming scan stages,
	// before residual filtering ("datalog.iter.rows").
	EngineIterRows
	// EngineIterPushdownScans counts streaming scans whose range was
	// tightened beyond the index prefix by at least one pushed-down
	// comparison ("datalog.iter.pushdown_scans").
	EngineIterPushdownScans
	// EngineIterResidualRows counts tuples dropped by residual (not
	// pushed-down) suffix checks and comparison filters inside streaming
	// scan stages ("datalog.iter.residual_rows").
	EngineIterResidualRows
	// TreeCowClones counts nodes cloned by the copy-on-write path when a
	// writer first touches a frozen (pre-snapshot-epoch) node
	// ("core.cow.clones").
	TreeCowClones
	// ServeSnapshotReads counts read frames the relation server answered
	// from the last-epoch snapshot because a write epoch held the phase
	// gate closed ("serve.snapshot.reads").
	ServeSnapshotReads
	// ClusterLogRecords counts records appended to shard insert logs,
	// insert records and epoch commit markers alike
	// ("cluster.log.records").
	ClusterLogRecords
	// ClusterLogBytes counts bytes written to shard insert logs, framing
	// and checksums included ("cluster.log.bytes").
	ClusterLogBytes
	// ClusterLogReplayTuples counts tuples recovered from committed
	// epochs during log replay ("cluster.log.replay.tuples").
	ClusterLogReplayTuples
	// ClusterLogTornTails counts incomplete trailing records truncated
	// during log replay — crash artifacts past the last durable flush,
	// never acknowledged ("cluster.log.torn_tails").
	ClusterLogTornTails
	// ClusterRebalanceMoves counts completed MoveRange operations — a
	// range frozen on the source shard, exported via snapshot, and
	// imported on the destination ("cluster.rebalance.moves").
	ClusterRebalanceMoves
	// ClusterRebalanceTuples counts tuples copied from source to
	// destination shard by rebalance moves ("cluster.rebalance.tuples").
	ClusterRebalanceTuples
	// ClusterScanFanouts counts router scans that touched more than one
	// shard and were stitched by the ordered k-way merge
	// ("cluster.scan.fanouts").
	ClusterScanFanouts
	// ClusterScanDupes counts duplicate tuples elided by the router's
	// scan merge while a range was being moved and visible on both its
	// source and destination shard ("cluster.scan.dupes").
	ClusterScanDupes
	// ClusterRebalanceAborts counts MoveRange operations that failed
	// before their fence and unwound through the draining overlay —
	// destination tuples reconciled back to the source
	// ("cluster.rebalance.aborts").
	ClusterRebalanceAborts
	// ClusterRebalanceFenceFailures counts moves whose source-log fence
	// append failed after a durable import; the move finalizes to the
	// destination anyway, because the partially-durable fence makes
	// restoring source ownership unsafe
	// ("cluster.rebalance.fence_failures").
	ClusterRebalanceFenceFailures
	// ClusterScanRestarts counts router scans that observed a shard-map
	// generation change mid-stream and restarted from their first
	// unemitted position under the fresh map
	// ("cluster.scan.restarts").
	ClusterScanRestarts
	// ReplicaStreamEpochs counts epoch frames shipped to followers by
	// leader-side log streamers ("replica.stream.epochs").
	ReplicaStreamEpochs
	// ReplicaApplyEpochs counts whole epochs applied by followers — live
	// stream and promotion catch-up alike ("replica.apply.epochs").
	ReplicaApplyEpochs
	// ReplicaApplyTuples counts tuples inserted into follower trees by
	// applied epochs ("replica.apply.tuples").
	ReplicaApplyTuples
	// ReplicaBootstrapTuples counts tuples a follower loaded from
	// snapshot pages during bootstrap, before joining the live stream
	// ("replica.bootstrap.tuples").
	ReplicaBootstrapTuples
	// ReplicaFencesApplied counts fence records a follower executed by
	// retiring the moved range from its tree
	// ("replica.fences.applied").
	ReplicaFencesApplied
	// ReplicaFollowerReads counts router reads served by a follower
	// within the staleness bound ("replica.reads.follower").
	ReplicaFollowerReads
	// ReplicaFallbackReads counts router reads that probed a follower but
	// fell back to the leader because the follower was stale beyond
	// MaxStaleEpochs or its stream was unhealthy
	// ("replica.reads.fallback").
	ReplicaFallbackReads
	// ReplicaPromotions counts followers promoted to shard leader after
	// replaying the dead leader's durable log tail
	// ("replica.promotions").
	ReplicaPromotions

	// NumCounters is the number of registered counters; valid Counter
	// values are [0, NumCounters).
	NumCounters
)

// counterNames maps every Counter to its stable published name.
var counterNames = [NumCounters]string{
	LockReadValidations:        "optlock.read.validations",
	LockReadValidationFailures: "optlock.read.validation_failures",
	LockUpgradeSuccesses:       "optlock.upgrade.successes",
	LockUpgradeFailures:        "optlock.upgrade.failures",
	LockWriteSpins:             "optlock.write.spins",
	TreeDescents:               "core.descents",
	TreeRestarts:               "core.restarts",
	HintInsertHits:             "hint.insert.hits",
	HintInsertMisses:           "hint.insert.misses",
	HintFindHits:               "hint.find.hits",
	HintFindMisses:             "hint.find.misses",
	HintLowerHits:              "hint.lower.hits",
	HintLowerMisses:            "hint.lower.misses",
	HintUpperHits:              "hint.upper.hits",
	HintUpperMisses:            "hint.upper.misses",
	TreeLeafSplits:             "core.split.leaf",
	TreeInnerSplits:            "core.split.inner",
	TreeRootSplits:             "core.split.root",
	EngineRounds:               "datalog.rounds",
	EngineRuleEvals:            "datalog.rule_evals",
	EngineDeltaTuples:          "datalog.delta_tuples",
	MergeBulkLoads:             "core.merge.bulk_loads",
	MergeHinted:                "core.merge.hinted",
	MergeParallelRuns:          "core.merge.parallel_runs",
	MergeParallelWorkers:       "core.merge.parallel_workers",
	EngineMergeJobs:            "datalog.merge.jobs",
	EngineParallelMerges:       "datalog.merge.parallel",
	ServeReadOps:               "serve.read.ops",
	ServeWriteOps:              "serve.write.ops",
	ServeWriteBatches:          "serve.write.batches",
	ServeEpochs:                "serve.epochs",
	ServeRetries:               "serve.retries",
	ServeConnsAccepted:         "serve.conns.accepted",
	ServeConnsDropped:          "serve.conns.dropped",
	ServePhaseViolations:       "serve.phase.violations",

	EnginePlanCacheHits:          "datalog.plan.cache_hits",
	EnginePlanCacheMisses:        "datalog.plan.cache_misses",
	EnginePlanCacheInvalidations: "datalog.plan.cache_invalidations",
	EngineIterScans:              "datalog.iter.scans",
	EngineIterRows:               "datalog.iter.rows",
	EngineIterPushdownScans:      "datalog.iter.pushdown_scans",
	EngineIterResidualRows:       "datalog.iter.residual_rows",

	TreeCowClones:      "core.cow.clones",
	ServeSnapshotReads: "serve.snapshot.reads",

	ClusterLogRecords:      "cluster.log.records",
	ClusterLogBytes:        "cluster.log.bytes",
	ClusterLogReplayTuples: "cluster.log.replay.tuples",
	ClusterLogTornTails:    "cluster.log.torn_tails",
	ClusterRebalanceMoves:  "cluster.rebalance.moves",
	ClusterRebalanceTuples: "cluster.rebalance.tuples",
	ClusterScanFanouts:     "cluster.scan.fanouts",
	ClusterScanDupes:       "cluster.scan.dupes",

	ClusterRebalanceAborts:        "cluster.rebalance.aborts",
	ClusterRebalanceFenceFailures: "cluster.rebalance.fence_failures",
	ClusterScanRestarts:           "cluster.scan.restarts",

	ReplicaStreamEpochs:    "replica.stream.epochs",
	ReplicaApplyEpochs:     "replica.apply.epochs",
	ReplicaApplyTuples:     "replica.apply.tuples",
	ReplicaBootstrapTuples: "replica.bootstrap.tuples",
	ReplicaFencesApplied:   "replica.fences.applied",
	ReplicaFollowerReads:   "replica.reads.follower",
	ReplicaFallbackReads:   "replica.reads.fallback",
	ReplicaPromotions:      "replica.promotions",
}

// Name returns the counter's stable published name, the key used in the
// JSON snapshot and documented in DESIGN.md §9.
func (c Counter) Name() string { return counterNames[c] }

// Names lists all counter names in registry (not lexicographic) order.
func Names() []string {
	out := make([]string, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		out[c] = counterNames[c]
	}
	return out
}

// cacheLine is the assumed cache-line size used for padding cell blocks.
const cacheLine = 64

// cellPad is the padding that rounds a cell block (counter cells plus the
// sampling tick) up to a cache-line multiple, so blocks owned by
// different goroutines never share a line.
const cellPad = (cacheLine - (int(NumCounters)*8+8)%cacheLine) % cacheLine

// numShards is the number of counter shards (tier 1). A power of
// two so shard selection is a mask; sized well above typical GOMAXPROCS
// so concurrent goroutines rarely collide on a shard.
const numShards = 64

// shard is one padded block of durable cells. A shard may be hit by
// several goroutines, so its cells take true atomic adds.
type shard struct {
	cells [NumCounters]atomic.Uint64
	// tick counts hint-less operations on this shard, the sampling gate
	// of SampleClock (hist.go).
	tick atomic.Uint64
	_    [cellPad]byte
}

// shards is the global cell array.
var shards [numShards]shard

// shardFor picks the current goroutine's shard. The goroutine
// identity proxy is the address of a stack variable: goroutine stacks
// live in distinct allocations, so discarding the in-stack low bits
// (>>10) and mixing with a Fibonacci constant spreads goroutines across
// shards. The pointer is consumed immediately as an integer, so the
// marker never escapes and the function allocates nothing. A goroutine
// whose stack moves may hash to another shard; that is harmless, since
// reads merge all shards.
func shardFor() *shard {
	return &shards[shardIndex()]
}

// shardIndex picks the current goroutine's shard index, shared by the
// counter and histogram shard arrays so a goroutine's cells stay
// together.
func shardIndex() uintptr {
	var marker byte
	h := uintptr(unsafe.Pointer(&marker)) >> 10
	return (h * 0x9E3779B9) & (numShards - 1)
}

// Inc adds 1 to counter c through the shards. Zero-allocation and safe
// from any goroutine, but lock-prefixed: reserve it for rare events
// (control plane, spin loops) and batch hot paths through OpCounts or
// Batch instead.
func Inc(c Counter) {
	if !Enabled {
		return
	}
	shardFor().cells[c].Add(1)
}

// Add adds n to counter c through the shards. Same cost profile as Inc.
func Add(c Counter, n uint64) {
	if !Enabled {
		return
	}
	shardFor().cells[c].Add(n)
}

// Value returns the current merged value of counter c across all shards.
// Concurrent increments may or may not be included (counters are
// monotone, so the result is always a valid recent value), and deltas
// still pending in unsettled batches are not visible yet.
func Value(c Counter) uint64 {
	var total uint64
	for i := range shards {
		total += shards[i].cells[c].Load()
	}
	return total
}

// Reset zeroes every counter and histogram. Intended for tests,
// benchmarks, and delimiting measurement windows in the bench commands;
// settle or discard outstanding batches first, and do not call it
// concurrently with operations you intend to count. The flight recorder
// has its own ResetFlight.
func Reset() {
	for i := range shards {
		for c := range shards[i].cells {
			shards[i].cells[c].Store(0)
		}
	}
	resetHistograms()
}

// Snapshot is one merged reading of every counter — the JSON document of
// the metrics contract. The zero value is not meaningful; obtain
// snapshots via Take.
type Snapshot struct {
	// Schema is the contract version, always SchemaVersion.
	Schema string `json:"schema"`
	// Enabled records whether the binary was built with counters live;
	// when false every counter reads zero.
	Enabled bool `json:"enabled"`
	// Counters maps every registered counter name to its merged value.
	// encoding/json emits the keys in sorted order.
	Counters map[string]uint64 `json:"counters"`
	// Histograms maps every registered histogram name to its merged
	// log2-bucketed snapshot (added in schema v2).
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Take returns a merged snapshot of all counters and histograms. Reads
// are not atomic across counters: a snapshot taken while writers run is
// a consistent-enough recent view (modulo unsettled batches), not a
// linearisation point.
func Take() Snapshot {
	s := Snapshot{
		Schema:     SchemaVersion,
		Enabled:    Enabled,
		Counters:   make(map[string]uint64, NumCounters),
		Histograms: TakeHistograms(),
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[counterNames[c]] = Value(c)
	}
	return s
}

// publishMu serialises Publish against itself.
var publishMu sync.Mutex

// Publish registers the counter registry with package expvar under the
// name "specbtree", so any HTTP server serving expvar's /debug/vars
// endpoint exposes a live snapshot. Idempotent: repeated calls — and
// calls racing an out-of-band registration of the same name — are
// no-ops rather than expvar duplicate-registration panics.
func Publish() {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("specbtree") != nil {
		return
	}
	expvar.Publish("specbtree", expvar.Func(func() any { return Take() }))
}
