package relation

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"specbtree/internal/tuple"
)

// TestProvidersRegistered checks the full Table 1 line-up is available.
func TestProvidersRegistered(t *testing.T) {
	for _, name := range []string{
		"btree", "btree-nh", "seqbtree", "seqbtree-nh",
		"rbtset", "hashset", "gbtree", "tbbhash",
	} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("provider %q has name %q", name, p.Name)
		}
		r := p.New(2)
		if r.Arity() != 2 || !r.Empty() {
			t.Errorf("provider %q produced a bad empty relation", name)
		}
	}
	if _, err := Lookup("nonesuch"); err == nil {
		t.Error("unknown provider did not error")
	}
}

// TestDifferentialAllProviders feeds an identical operation stream to
// every provider and cross-checks against a reference map model.
func TestDifferentialAllProviders(t *testing.T) {
	stream := make([]tuple.Tuple, 4000)
	rng := rand.New(rand.NewSource(13))
	for i := range stream {
		stream[i] = tuple.Tuple{uint64(rng.Intn(90)), uint64(rng.Intn(90))}
	}
	model := map[[2]uint64]bool{}
	modelFresh := make([]bool, len(stream))
	for i, tp := range stream {
		k := [2]uint64{tp[0], tp[1]}
		modelFresh[i] = !model[k]
		model[k] = true
	}

	for _, name := range Names() {
		p := MustLookup(name)
		r := p.New(2)
		ops := r.NewOps()
		for i, tp := range stream {
			if got := ops.Insert(tp); got != modelFresh[i] {
				t.Fatalf("%s: insert %d (%v) = %v, want %v", name, i, tp, got, modelFresh[i])
			}
		}
		if r.Len() != len(model) {
			t.Fatalf("%s: Len = %d, want %d", name, r.Len(), len(model))
		}
		for k := range model {
			if !ops.Contains(tuple.Tuple{k[0], k[1]}) {
				t.Fatalf("%s: %v missing", name, k)
			}
		}
		if ops.Contains(tuple.Tuple{500, 500}) {
			t.Fatalf("%s: phantom tuple", name)
		}
		// Scan visits each element exactly once.
		seen := map[[2]uint64]int{}
		r.Scan(func(tp tuple.Tuple) bool {
			seen[[2]uint64{tp[0], tp[1]}]++
			return true
		})
		if len(seen) != len(model) {
			t.Fatalf("%s: scan saw %d distinct, want %d", name, len(seen), len(model))
		}
		for k, c := range seen {
			if c != 1 || !model[k] {
				t.Fatalf("%s: scan anomaly at %v (count %d)", name, k, c)
			}
		}
	}
}

// TestPrefixScanAllProviders verifies prefix scans return exactly the
// matching tuples for every provider (ordered backends must also sort).
func TestPrefixScanAllProviders(t *testing.T) {
	var data []tuple.Tuple
	for x := uint64(0); x < 25; x++ {
		for y := uint64(0); y < 1+x%5; y++ {
			data = append(data, tuple.Tuple{x, y * 3})
		}
	}
	for _, name := range Names() {
		p := MustLookup(name)
		r := p.New(2)
		ops := r.NewOps()
		for _, tp := range data {
			ops.Insert(tp)
		}
		for x := uint64(0); x < 27; x++ {
			var want []tuple.Tuple
			for _, tp := range data {
				if tp[0] == x {
					want = append(want, tp)
				}
			}
			var got []tuple.Tuple
			ops.PrefixScan(tuple.Tuple{x}, func(tp tuple.Tuple) bool {
				got = append(got, tp.Clone())
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%s: prefix %d yielded %d, want %d", name, x, len(got), len(want))
			}
			if p.Ordered {
				if !sort.SliceIsSorted(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) }) {
					t.Fatalf("%s: prefix scan unordered", name)
				}
			} else {
				sort.Slice(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) })
			}
			for i := range got {
				if !tuple.Equal(got[i], want[i]) {
					t.Fatalf("%s: prefix %d element %d = %v, want %v", name, x, i, got[i], want[i])
				}
			}
		}
	}
}

// TestConcurrentInsertAllProviders checks the Ops-level thread-safety
// contract: concurrent inserts through per-goroutine handles are safe for
// every provider (native or global-locked).
func TestConcurrentInsertAllProviders(t *testing.T) {
	for _, name := range Names() {
		p := MustLookup(name)
		r := p.New(2)
		workers, perW := 6, 1500
		if testing.Short() {
			perW = 300
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ops := r.NewOps()
				for i := 0; i < perW; i++ {
					ops.Insert(tuple.Tuple{uint64(w*perW + i), uint64(i)})
					ops.Insert(tuple.Tuple{uint64(i), 0}) // shared overlap
				}
			}(w)
		}
		wg.Wait()
		// Worker 0's disjoint stream {i, i} collides with the shared
		// stream {i, 0} exactly once, at i == 0.
		want := workers*perW + perW - 1
		if got := r.Len(); got != want {
			t.Fatalf("%s: Len = %d, want %d", name, got, want)
		}
	}
}

// TestMergeFromAllProviders merges across same and different providers.
func TestMergeFromAllProviders(t *testing.T) {
	fill := func(r Relation, start, n uint64) {
		ops := r.NewOps()
		for i := uint64(0); i < n; i++ {
			ops.Insert(tuple.Tuple{start + i, 0})
		}
	}
	for _, name := range Names() {
		p := MustLookup(name)
		// Same-provider merge (may take the specialised path).
		a, b := p.New(2), p.New(2)
		fill(a, 0, 500)
		fill(b, 250, 500)
		a.MergeFrom(b)
		if a.Len() != 750 {
			t.Fatalf("%s: same-provider merge Len = %d, want 750", name, a.Len())
		}
		// Cross-provider merge (generic path).
		c := p.New(2)
		d := MustLookup("hashset").New(2)
		fill(c, 0, 300)
		fill(d, 100, 300)
		c.MergeFrom(d)
		if c.Len() != 400 {
			t.Fatalf("%s: cross-provider merge Len = %d, want 400", name, c.Len())
		}
	}
}

// TestHintReporting: hinted backends expose statistics through the
// HintReporter interface.
func TestHintReporting(t *testing.T) {
	for _, tc := range []struct {
		name      string
		wantHints bool
	}{
		{"btree", true},
		{"seqbtree", true},
		{"btree-nh", false},
		{"rbtset", false},
	} {
		r := MustLookup(tc.name).New(1)
		ops := r.NewOps()
		for i := 0; i < 500; i++ {
			ops.Insert(tuple.Tuple{uint64(i)})
			ops.Contains(tuple.Tuple{uint64(i)})
		}
		rep, ok := ops.(HintReporter)
		if !ok {
			if tc.wantHints {
				t.Errorf("%s: no HintReporter", tc.name)
			}
			continue
		}
		hits, misses := rep.HintStats()
		if tc.wantHints && hits == 0 {
			t.Errorf("%s: zero hint hits on ordered workload (misses %d)", tc.name, misses)
		}
		if !tc.wantHints && hits+misses != 0 {
			t.Errorf("%s: hint stats %d/%d on hint-less configuration", tc.name, hits, misses)
		}
	}
}

func TestEmptyPrefixScansWholeRelation(t *testing.T) {
	r := MustLookup("btree").New(2)
	ops := r.NewOps()
	for i := uint64(0); i < 100; i++ {
		ops.Insert(tuple.Tuple{i % 10, i / 10})
	}
	count := 0
	ops.PrefixScan(tuple.Tuple{}, func(tuple.Tuple) bool {
		count++
		return true
	})
	if count != 100 {
		t.Errorf("empty prefix scanned %d, want 100", count)
	}
}
