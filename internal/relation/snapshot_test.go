package relation

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

// TestSnapshotAllProviders is a differential sweep over every provider:
// a snapshot taken between two insert waves must see exactly the first
// wave — in sorted order, through every Snapshot method — whether the
// backend snapshots natively (the core tree's epoch capture) or through
// the materializing fallback.
func TestSnapshotAllProviders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wave := func(n int) []tuple.Tuple {
		out := make([]tuple.Tuple, n)
		for i := range out {
			out[i] = tuple.Tuple{uint64(rng.Intn(120)), uint64(rng.Intn(120))}
		}
		return out
	}
	before, after := wave(600), wave(600)

	model := map[[2]uint64]bool{}
	for _, tp := range before {
		model[[2]uint64{tp[0], tp[1]}] = true
	}
	var ref []tuple.Tuple
	for k := range model {
		ref = append(ref, tuple.Tuple{k[0], k[1]})
	}
	sort.Slice(ref, func(i, j int) bool { return tuple.Less(ref[i], ref[j]) })

	for _, name := range Names() {
		p := MustLookup(name)
		r := p.New(2)
		ops := r.NewOps()
		for _, tp := range before {
			ops.Insert(tp)
		}

		s := SnapshotOf(r)

		for _, tp := range after {
			ops.Insert(tp)
		}

		if s.Arity() != 2 {
			t.Fatalf("%s: snapshot arity = %d", name, s.Arity())
		}
		if s.Len() != len(ref) {
			t.Fatalf("%s: snapshot Len = %d, want %d", name, s.Len(), len(ref))
		}
		// Full ordered scan matches the frozen sorted reference exactly.
		var got []tuple.Tuple
		s.Scan(nil, nil, func(tp tuple.Tuple) bool {
			got = append(got, tp.Clone())
			return true
		})
		if len(got) != len(ref) {
			t.Fatalf("%s: scan yielded %d tuples, want %d", name, len(got), len(ref))
		}
		for i := range got {
			if !tuple.Equal(got[i], ref[i]) {
				t.Fatalf("%s: scan[%d] = %v, want %v", name, i, got[i], ref[i])
			}
		}
		// Membership: everything pre-epoch in, nothing post-epoch leaked.
		for _, tp := range ref {
			if !s.Contains(tp) {
				t.Fatalf("%s: snapshot lost %v", name, tp)
			}
		}
		for _, tp := range after {
			if !model[[2]uint64{tp[0], tp[1]}] && s.Contains(tp) {
				t.Fatalf("%s: snapshot sees post-epoch tuple %v", name, tp)
			}
		}
		// Bounds against the sorted reference.
		for probe := 0; probe < 50; probe++ {
			v := tuple.Tuple{uint64(rng.Intn(130)), uint64(rng.Intn(130))}
			wantIdx := sort.Search(len(ref), func(i int) bool { return tuple.Compare(ref[i], v) >= 0 })
			gotT, ok := s.LowerBound(v)
			if ok != (wantIdx < len(ref)) {
				t.Fatalf("%s: LowerBound(%v) ok=%v, want %v", name, v, ok, wantIdx < len(ref))
			}
			if ok && !tuple.Equal(gotT, ref[wantIdx]) {
				t.Fatalf("%s: LowerBound(%v) = %v, want %v", name, v, gotT, ref[wantIdx])
			}
			wantIdx = sort.Search(len(ref), func(i int) bool { return tuple.Compare(ref[i], v) > 0 })
			gotT, ok = s.UpperBound(v)
			if ok != (wantIdx < len(ref)) {
				t.Fatalf("%s: UpperBound(%v) ok=%v, want %v", name, v, ok, wantIdx < len(ref))
			}
			if ok && !tuple.Equal(gotT, ref[wantIdx]) {
				t.Fatalf("%s: UpperBound(%v) = %v, want %v", name, v, gotT, ref[wantIdx])
			}
		}
		// Windowed scan with both bounds.
		lo, hi := tuple.Tuple{30, 0}, tuple.Tuple{80, 0}
		var window []tuple.Tuple
		s.Scan(lo, hi, func(tp tuple.Tuple) bool {
			window = append(window, tp.Clone())
			return true
		})
		var wantWindow []tuple.Tuple
		for _, tp := range ref {
			if tuple.Compare(tp, lo) >= 0 && tuple.Compare(tp, hi) < 0 {
				wantWindow = append(wantWindow, tp)
			}
		}
		if len(window) != len(wantWindow) {
			t.Fatalf("%s: window scan yielded %d tuples, want %d", name, len(window), len(wantWindow))
		}
		for i := range window {
			if !tuple.Equal(window[i], wantWindow[i]) {
				t.Fatalf("%s: window[%d] = %v, want %v", name, i, window[i], wantWindow[i])
			}
		}
		// Early-stop contract.
		n := 0
		s.Scan(nil, nil, func(tuple.Tuple) bool { n++; return n < 5 })
		if n != 5 {
			t.Fatalf("%s: scan ignored yield=false (n=%d)", name, n)
		}
	}
}

// TestSnapshotNativeCore asserts the core provider takes the native
// (Snapshotter) path rather than the materializing fallback.
func TestSnapshotNativeCore(t *testing.T) {
	r := MustLookup("btree").New(2)
	if _, ok := r.(Snapshotter); !ok {
		t.Fatal("btree relation does not implement Snapshotter")
	}
	s := SnapshotOf(r)
	if _, ok := s.(coreSnapshot); !ok {
		t.Fatalf("SnapshotOf(btree) = %T, want coreSnapshot", s)
	}
}

// TestExportRange checks the interface-level export over both a native
// core snapshot and the materialising fallback.
func TestExportRange(t *testing.T) {
	for _, backend := range []string{"btree", "sorted"} {
		t.Run(backend, func(t *testing.T) {
			p, err := Lookup("btree")
			if err != nil {
				t.Fatal(err)
			}
			r := p.New(2)
			ops := r.NewOps()
			for i := uint64(0); i < 40; i++ {
				ops.Insert(tuple.Tuple{i, i * 2})
			}
			var s Snapshot
			if backend == "btree" {
				s = SnapshotOf(r)
			} else {
				rows := make([]tuple.Tuple, 0, 40)
				r.Scan(func(tp tuple.Tuple) bool {
					rows = append(rows, tp.Clone())
					return true
				})
				sort.Slice(rows, func(i, j int) bool { return tuple.Less(rows[i], rows[j]) })
				s = &sortedSnapshot{arity: 2, rows: rows}
			}
			got := ExportRange(s, tuple.Tuple{10, 0}, tuple.Tuple{20, 0})
			if len(got) != 10 {
				t.Fatalf("exported %d tuples, want 10", len(got))
			}
			for i, tp := range got {
				if want := (tuple.Tuple{uint64(10 + i), uint64(20 + 2*i)}); !tuple.Equal(tp, want) {
					t.Fatalf("export[%d] = %v, want %v", i, tp, want)
				}
			}
		})
	}
}
