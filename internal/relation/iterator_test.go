package relation

import (
	"testing"

	"specbtree/internal/tuple"
)

// cursorProviders lists the providers whose Ops implement CursorOps.
func cursorProviders(t *testing.T) []Provider {
	t.Helper()
	var out []Provider
	for _, name := range Names() {
		p := MustLookup(name)
		r := p.New(2)
		if _, ok := r.NewOps().(CursorOps); ok {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatal("no provider implements CursorOps")
	}
	return out
}

func collect(it Iterator) []tuple.Tuple {
	var out []tuple.Tuple
	for it.Next() {
		out = append(out, append(tuple.Tuple(nil), it.Tuple()...))
	}
	return out
}

// TestIteratorRangeScan drives the basic Seek/Next contract on every
// cursor-backed provider: half-open bounds, nil hi, empty and inverted
// ranges, and ranges beyond the data.
func TestIteratorRangeScan(t *testing.T) {
	for _, p := range cursorProviders(t) {
		t.Run(p.Name, func(t *testing.T) {
			r := p.New(2)
			ops := r.NewOps()
			for _, row := range []tuple.Tuple{{1, 10}, {1, 20}, {2, 5}, {2, 15}, {3, 1}} {
				ops.Insert(row)
			}
			it := ops.(CursorOps).NewIterator()

			// Full range: nil hi runs to the end.
			it.Seek(tuple.Tuple{0, 0}, nil)
			if got := collect(it); len(got) != 5 {
				t.Fatalf("full scan: %v", got)
			}
			// Half-open: hi is exclusive.
			it.Seek(tuple.Tuple{1, 20}, tuple.Tuple{2, 15})
			if got := collect(it); len(got) != 2 || got[0][1] != 20 || got[1][1] != 5 {
				t.Fatalf("half-open scan: %v", got)
			}
			// Empty range: lo == hi.
			it.Seek(tuple.Tuple{2, 5}, tuple.Tuple{2, 5})
			if got := collect(it); len(got) != 0 {
				t.Fatalf("lo==hi yielded %v", got)
			}
			// Inverted range: lo > hi yields nothing.
			it.Seek(tuple.Tuple{3, 0}, tuple.Tuple{1, 0})
			if got := collect(it); len(got) != 0 {
				t.Fatalf("inverted range yielded %v", got)
			}
			// Range entirely past the data.
			it.Seek(tuple.Tuple{9, 0}, nil)
			if got := collect(it); len(got) != 0 {
				t.Fatalf("past-the-end range yielded %v", got)
			}
		})
	}
}

// TestIteratorRewind: a Seek repositions a used iterator — including
// one that was run to exhaustion — with no residue from the prior scan.
func TestIteratorRewind(t *testing.T) {
	for _, p := range cursorProviders(t) {
		t.Run(p.Name, func(t *testing.T) {
			r := p.New(2)
			ops := r.NewOps()
			for k := uint64(0); k < 4; k++ {
				for v := uint64(0); v < 4; v++ {
					ops.Insert(tuple.Tuple{k, v})
				}
			}
			it := ops.(CursorOps).NewIterator()

			// Exhaust one range, then rewind into another.
			it.Seek(tuple.Tuple{1, 0}, tuple.Tuple{2, 0})
			if got := collect(it); len(got) != 4 {
				t.Fatalf("first scan: %v", got)
			}
			if it.Next() {
				t.Fatal("Next after exhaustion reported a tuple")
			}
			it.Seek(tuple.Tuple{3, 1}, tuple.Tuple{3, 3})
			got := collect(it)
			if len(got) != 2 || got[0][0] != 3 || got[0][1] != 1 || got[1][1] != 2 {
				t.Fatalf("rewound scan: %v", got)
			}

			// Rewind mid-scan: abandon a half-consumed range.
			it.Seek(tuple.Tuple{0, 0}, nil)
			if !it.Next() {
				t.Fatal("mid-scan setup failed")
			}
			it.Seek(tuple.Tuple{2, 2}, tuple.Tuple{2, 4})
			if got := collect(it); len(got) != 2 || got[0][1] != 2 {
				t.Fatalf("mid-scan rewind: %v", got)
			}

			// Rewind into an empty range, then back to a full one.
			it.Seek(tuple.Tuple{9, 0}, nil)
			if it.Next() {
				t.Fatal("empty reseek yielded a tuple")
			}
			it.Seek(tuple.Tuple{0, 0}, tuple.Tuple{1, 0})
			if got := collect(it); len(got) != 4 {
				t.Fatalf("reseek after empty: %v", got)
			}
		})
	}
}

// TestIteratorEmptyRelation: iterators over empty relations terminate
// immediately for every bound shape.
func TestIteratorEmptyRelation(t *testing.T) {
	for _, p := range cursorProviders(t) {
		t.Run(p.Name, func(t *testing.T) {
			it := p.New(2).NewOps().(CursorOps).NewIterator()
			for _, hi := range []tuple.Tuple{nil, {5, 5}} {
				it.Seek(tuple.Tuple{0, 0}, hi)
				if it.Next() {
					t.Fatalf("empty relation yielded a tuple (hi=%v)", hi)
				}
				if it.Next() {
					t.Fatal("repeated Next after exhaustion yielded a tuple")
				}
			}
		})
	}
}

// TestIteratorMaxBounds: ranges touching the top of the key space.
func TestIteratorMaxBounds(t *testing.T) {
	max := ^uint64(0)
	for _, p := range cursorProviders(t) {
		t.Run(p.Name, func(t *testing.T) {
			r := p.New(2)
			ops := r.NewOps()
			ops.Insert(tuple.Tuple{max, max})
			ops.Insert(tuple.Tuple{max, 0})
			ops.Insert(tuple.Tuple{0, max})
			it := ops.(CursorOps).NewIterator()

			it.Seek(tuple.Tuple{max, 0}, nil)
			if got := collect(it); len(got) != 2 {
				t.Fatalf("max-prefix scan: %v", got)
			}
			it.Seek(tuple.Tuple{max, max}, nil)
			got := collect(it)
			if len(got) != 1 || got[0][1] != max {
				t.Fatalf("max-tuple scan: %v", got)
			}
		})
	}
}

// TestIteratorTransientView: the Tuple view is only valid until the
// next Next — the documented contract; copies must be taken explicitly.
func TestIteratorTransientView(t *testing.T) {
	for _, p := range cursorProviders(t) {
		t.Run(p.Name, func(t *testing.T) {
			r := p.New(1)
			ops := r.NewOps()
			ops.Insert(tuple.Tuple{1})
			ops.Insert(tuple.Tuple{2})
			it := ops.(CursorOps).NewIterator()
			it.Seek(tuple.Tuple{0}, nil)
			if !it.Next() {
				t.Fatal("no first tuple")
			}
			first := append(tuple.Tuple(nil), it.Tuple()...)
			if !it.Next() {
				t.Fatal("no second tuple")
			}
			if first[0] != 1 || it.Tuple()[0] != 2 {
				t.Fatalf("copied=%v current=%v", first, it.Tuple())
			}
		})
	}
}
