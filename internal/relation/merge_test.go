package relation

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

// TestMergeIntoAllProviders checks the MergeInto contract for every
// registered provider: for any worker count the destination ends up
// holding exactly the set union, whether the provider dispatches to a
// native parallel merge or degrades to the sequential MergeFrom.
func TestMergeIntoAllProviders(t *testing.T) {
	mk := func(seed int64, n int) []tuple.Tuple {
		rng := rand.New(rand.NewSource(seed))
		out := make([]tuple.Tuple, n)
		for i := range out {
			out[i] = tuple.Tuple{uint64(rng.Intn(300)), uint64(rng.Intn(300))}
		}
		return out
	}
	dstTuples := mk(3, 5000)
	srcTuples := mk(4, 9000)
	union := map[[2]uint64]bool{}
	for _, tp := range dstTuples {
		union[[2]uint64{tp[0], tp[1]}] = true
	}
	for _, tp := range srcTuples {
		union[[2]uint64{tp[0], tp[1]}] = true
	}

	for _, name := range Names() {
		p := MustLookup(name)
		for _, workers := range []int{1, 2, 8} {
			dst := p.New(2)
			ops := dst.NewOps()
			for _, tp := range dstTuples {
				ops.Insert(tp)
			}
			src := p.New(2)
			ops = src.NewOps()
			for _, tp := range srcTuples {
				ops.Insert(tp)
			}

			MergeInto(dst, src, workers)

			if dst.Len() != len(union) {
				t.Fatalf("%s workers=%d: Len = %d, want %d", name, workers, dst.Len(), len(union))
			}
			seen := map[[2]uint64]int{}
			dst.Scan(func(tp tuple.Tuple) bool {
				seen[[2]uint64{tp[0], tp[1]}]++
				return true
			})
			for k := range union {
				if seen[k] != 1 {
					t.Fatalf("%s workers=%d: %v seen %d times", name, workers, k, seen[k])
				}
			}
			if len(seen) != len(union) {
				t.Fatalf("%s workers=%d: scan saw %d distinct, want %d", name, workers, len(seen), len(union))
			}
			// src must be untouched.
			if src.Len() != func() int {
				s := map[[2]uint64]bool{}
				for _, tp := range srcTuples {
					s[[2]uint64{tp[0], tp[1]}] = true
				}
				return len(s)
			}() {
				t.Fatalf("%s workers=%d: source mutated", name, workers)
			}
		}
	}
}

// TestMergeIntoCrossProvider merges a btree source into a tbbhash
// destination and vice versa: ParallelMergeFrom implementations must
// handle foreign sources (falling back to a scan) without losing tuples.
func TestMergeIntoCrossProvider(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tuples := make([]tuple.Tuple, 6000)
	union := map[[2]uint64]bool{}
	for i := range tuples {
		tuples[i] = tuple.Tuple{uint64(rng.Intn(250)), uint64(rng.Intn(250))}
		union[[2]uint64{tuples[i][0], tuples[i][1]}] = true
	}

	pairs := [][2]string{{"btree", "tbbhash"}, {"tbbhash", "btree"}}
	for _, pair := range pairs {
		dst := MustLookup(pair[0]).New(2)
		src := MustLookup(pair[1]).New(2)
		ops := src.NewOps()
		for _, tp := range tuples {
			ops.Insert(tp)
		}
		MergeInto(dst, src, 4)
		if dst.Len() != len(union) {
			t.Fatalf("%s <- %s: Len = %d, want %d", pair[0], pair[1], dst.Len(), len(union))
		}
	}
}

// TestMergeIntoOrderedDeterministic: for ordered destinations the merged
// scan order must be identical across worker counts.
func TestMergeIntoOrderedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dstTuples := make([]tuple.Tuple, 4000)
	for i := range dstTuples {
		dstTuples[i] = tuple.Tuple{uint64(rng.Intn(500)), uint64(rng.Intn(500))}
	}
	srcTuples := make([]tuple.Tuple, 8000)
	for i := range srcTuples {
		srcTuples[i] = tuple.Tuple{uint64(rng.Intn(500)), uint64(rng.Intn(500))}
	}

	for _, name := range Names() {
		p := MustLookup(name)
		if !p.Ordered {
			continue
		}
		var want []tuple.Tuple
		for _, workers := range []int{1, 2, 8} {
			dst := p.New(2)
			ops := dst.NewOps()
			for _, tp := range dstTuples {
				ops.Insert(tp)
			}
			src := p.New(2)
			ops = src.NewOps()
			for _, tp := range srcTuples {
				ops.Insert(tp)
			}
			MergeInto(dst, src, workers)

			var got []tuple.Tuple
			dst.Scan(func(tp tuple.Tuple) bool {
				got = append(got, tp.Clone())
				return true
			})
			if !sort.SliceIsSorted(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) }) {
				t.Fatalf("%s workers=%d: scan out of order", name, workers)
			}
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d tuples, want %d", name, workers, len(got), len(want))
			}
			for i := range want {
				if !tuple.Equal(got[i], want[i]) {
					t.Fatalf("%s workers=%d element %d: %v != %v", name, workers, i, got[i], want[i])
				}
			}
		}
	}
}
