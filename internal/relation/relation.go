// Package relation abstracts the set data structures backing Datalog
// relations so the evaluation engine — like the adapted Soufflé of the
// paper's §4.3 — can be instantiated with any of the investigated
// representations (Table 1).
//
// A Relation is an insert-only set of fixed-arity tuples with the
// operations §2 of the paper identifies as essential: insert, membership,
// ordered prefix scans (lower/upper bound ranges) and full traversal.
// Per-worker Ops handles carry operation hints where the underlying
// structure supports them.
package relation

import (
	"fmt"
	"sort"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// Relation is a set of fixed-arity tuples used as a Datalog relation.
//
// Thread-safety contract (the phase discipline of semi-naïve evaluation):
// Insert through concurrently held Ops handles is safe for every
// implementation — natively for the concurrent structures, via a global
// lock for the sequential baselines. All read operations are only
// guaranteed safe while no writer is active on the same relation.
type Relation interface {
	// Arity returns the tuple width.
	Arity() int
	// Len returns the number of tuples (read phase).
	Len() int
	// Empty reports whether the relation holds no tuples (read phase).
	Empty() bool
	// NewOps returns a per-goroutine operation handle. Handles must not be
	// shared between goroutines; they carry operation hints.
	NewOps() Ops
	// Scan iterates over all tuples. Ordered implementations iterate in
	// lexicographic order; hash-based ones in storage order. The yielded
	// tuple is a transient view — clone to retain.
	Scan(yield func(tuple.Tuple) bool)
	// MergeFrom inserts every tuple of src into the relation.
	// Single-writer: no other mutation may be in flight.
	MergeFrom(src Relation)
}

// Ops is a per-goroutine handle performing relation operations with
// goroutine-local operation hints (paper §3.2). Implementations backed by
// hint-less structures simply forward to the shared set.
type Ops interface {
	// Insert adds t, reporting whether it was new.
	Insert(t tuple.Tuple) bool
	// Contains reports membership.
	Contains(t tuple.Tuple) bool
	// PrefixScan iterates, in lexicographic order for ordered backends,
	// over all tuples whose first len(prefix) columns equal prefix.
	PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool)
}

// ParallelMerger is implemented by relations whose merge can fan the
// work out across goroutines. The concurrency contract matches
// MergeFrom's slot in the evaluation's phase discipline: exactly one
// merge is in flight on the destination and src is quiescent, but within
// the call the implementation may mutate the destination from several
// goroutines at once (sound for natively concurrent backends, which is
// why only those implement the interface — sequential baselines keep the
// plain MergeFrom contract and are dispatched through it by MergeInto).
type ParallelMerger interface {
	// ParallelMergeFrom inserts every tuple of src into the relation using
	// up to workers goroutines. workers <= 1 must behave like MergeFrom.
	ParallelMergeFrom(src Relation, workers int)
}

// MergeInto merges src into dst with up to workers goroutines when dst
// supports parallel merging, and falls back to the sequential
// single-writer MergeFrom otherwise. It is the engine's single entry
// point for bulk data movement between relation versions, so the
// fallback matrix lives in one place: btree partitions the source key
// range natively, tbbhash chunks a materialised scan, and every
// lock-adapted sequential baseline degrades to its global-lock
// MergeFrom.
func MergeInto(dst, src Relation, workers int) {
	if workers > 1 {
		if pm, ok := dst.(ParallelMerger); ok {
			pm.ParallelMergeFrom(src, workers)
			return
		}
	}
	dst.MergeFrom(src)
}

// HintReporter is implemented by Ops whose backend collects hint
// statistics.
type HintReporter interface {
	HintStats() (hits, misses uint64)
}

// StatsFlusher is implemented by Ops that batch observability counters
// (package obs) locally for hot-path cheapness. The engine calls
// FlushStats at measurement boundaries — after evaluation completes — so
// global counter snapshots are exact.
type StatsFlusher interface {
	FlushStats()
}

// Shaper is implemented by relations whose backing structure can report
// its physical shape (package core's tree walker). The debug server's
// /debug/treeshape endpoint surfaces these; backends without a
// meaningful shape simply do not implement the interface.
type Shaper interface {
	// Shape walks the backing tree and reports depth, node counts and
	// fill factors per level. Safe against concurrent writers for the
	// concurrent backends (best-effort snapshot); exact when quiescent.
	Shape() core.Shape
}

// Splitter is implemented by relations that can partition their content
// into contiguous key ranges — Soufflé-style chunking, which lets the
// engine hand each evaluation worker a subrange of an outer scan instead
// of materialising the scan up front.
type Splitter interface {
	// SplitRange returns strictly increasing boundary tuples inside
	// (from, to); scanning [from,b1), [b1,b2), ..., [bk,to) covers exactly
	// the range [from, to). Read phase only.
	SplitRange(from, to tuple.Tuple, n int) []tuple.Tuple
}

// RangeScanner is implemented by Ops that can scan an arbitrary
// lexicographic range. from must be non-nil; a nil to scans to the end.
type RangeScanner interface {
	RangeScan(from, to tuple.Tuple, yield func(tuple.Tuple) bool)
}

// Iterator is a reusable pull-based range scan over one relation — the
// cursor surface the streaming Datalog evaluator composes into join
// chains (DESIGN.md §12). The protocol is Seek-then-Next:
//
//	it.Seek(lo, hi)
//	for it.Next() {
//	    row := it.Tuple() // transient view, valid until the next call
//	}
//
// Seek may be called again at any time — including mid-scan or after
// exhaustion — to reposition the iterator on a new (or the same) range,
// which is how composed chains rewind an inner scan per outer binding
// without allocating. Like all read operations, iterators are only
// guaranteed safe while no writer is active on the relation (the phase
// discipline), and an Iterator must stay confined to the goroutine of
// the Ops handle that created it.
type Iterator interface {
	// Seek positions the iterator on the range [lo, hi); hi == nil means
	// "to the end". The next call to Next yields the first tuple of the
	// range. lo must be non-nil and both bounds must have the relation's
	// arity.
	Seek(lo, hi tuple.Tuple)
	// Next advances to the next tuple of the current range, reporting
	// false when the range is exhausted (or Seek has never been called).
	// Once exhausted it keeps returning false until the next Seek.
	Next() bool
	// Tuple returns the current row as a transient view: valid only
	// until the next call to Next or Seek, and must not be mutated.
	Tuple() tuple.Tuple
}

// CursorOps is implemented by Ops whose backend exposes ordered
// positional cursors (the B-trees). NewIterator returns an unpositioned
// reusable Iterator bound to this handle, sharing its operation hints;
// backends without cursor geometry simply do not implement the
// interface, and the engine falls back to a materialising adapter.
type CursorOps interface {
	NewIterator() Iterator
}

// Provider constructs relations of a given arity.
type Provider struct {
	// Name is the designation used in the paper's tables and figures.
	Name string
	// ThreadSafe reports whether the backend synchronises inserts natively
	// (rather than through the adapter's global lock).
	ThreadSafe bool
	// Ordered reports whether PrefixScan is better than a filtered full
	// scan.
	Ordered bool
	// New creates an empty relation with the given tuple width.
	New func(arity int) Relation
}

// providers is the registry, populated by adapter files in this package.
var providers = map[string]Provider{}

// Register adds a provider under its name; it panics on duplicates and is
// intended for this package's adapter files (and tests).
func Register(p Provider) {
	if _, dup := providers[p.Name]; dup {
		panic(fmt.Sprintf("relation: duplicate provider %q", p.Name))
	}
	providers[p.Name] = p
}

// Lookup returns the provider registered under name.
func Lookup(name string) (Provider, error) {
	p, ok := providers[name]
	if !ok {
		return Provider{}, fmt.Errorf("relation: unknown provider %q (have %v)", name, Names())
	}
	return p, nil
}

// MustLookup is Lookup, panicking on unknown names.
func MustLookup(name string) Provider {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the registered provider names in sorted order.
func Names() []string {
	out := make([]string, 0, len(providers))
	for n := range providers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// genericMerge copies src into dst tuple by tuple through a fresh Ops
// handle; adapters with a specialised merge override MergeFrom instead.
func genericMerge(dst Relation, src Relation) {
	ops := dst.NewOps()
	src.Scan(func(t tuple.Tuple) bool {
		ops.Insert(t)
		return true
	})
}
