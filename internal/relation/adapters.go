package relation

import (
	"sync"

	"specbtree/internal/chashset"
	"specbtree/internal/core"
	"specbtree/internal/gbtree"
	"specbtree/internal/hashset"
	"specbtree/internal/rbtree"
	"specbtree/internal/seqbtree"
	"specbtree/internal/tuple"
)

func init() {
	Register(Provider{
		Name: "btree", ThreadSafe: true, Ordered: true,
		New: func(arity int) Relation { return &btreeRel{t: core.New(arity), hints: true} },
	})
	Register(Provider{
		Name: "btree-nh", ThreadSafe: true, Ordered: true,
		New: func(arity int) Relation { return &btreeRel{t: core.New(arity)} },
	})
	Register(Provider{
		Name: "seqbtree", ThreadSafe: false, Ordered: true,
		New: func(arity int) Relation { return &seqRel{t: seqbtree.New(arity), hints: true} },
	})
	Register(Provider{
		Name: "seqbtree-nh", ThreadSafe: false, Ordered: true,
		New: func(arity int) Relation { return &seqRel{t: seqbtree.New(arity)} },
	})
	Register(Provider{
		Name: "rbtset", ThreadSafe: false, Ordered: true,
		New: func(arity int) Relation { return &rbRel{t: rbtree.New(arity)} },
	})
	Register(Provider{
		Name: "hashset", ThreadSafe: false, Ordered: false,
		New: func(arity int) Relation { return &hashRel{s: hashset.New(arity)} },
	})
	Register(Provider{
		Name: "gbtree", ThreadSafe: false, Ordered: true,
		New: func(arity int) Relation { return &gbRel{t: gbtree.New(arity)} },
	})
	Register(Provider{
		Name: "tbbhash", ThreadSafe: true, Ordered: false,
		New: func(arity int) Relation { return &chashRel{s: chashset.New(arity)} },
	})
}

// prefixBounds derives the [lo, hi) tuple range of a prefix scan.
func prefixBounds(prefix tuple.Tuple, arity int) (lo, hi tuple.Tuple) {
	return tuple.PrefixLowerBound(prefix, arity), tuple.PrefixUpperBound(prefix, arity)
}

// ---- specialised concurrent B-tree (the contribution) ----

type btreeRel struct {
	t     *core.Tree
	hints bool
}

func (r *btreeRel) Arity() int { return r.t.Arity() }
func (r *btreeRel) Len() int   { return r.t.Len() }
func (r *btreeRel) Empty() bool {
	return r.t.Empty()
}

func (r *btreeRel) NewOps() Ops {
	if r.hints {
		return &btreeOps{t: r.t, h: core.NewHints()}
	}
	return &btreeOps{t: r.t}
}

func (r *btreeRel) Scan(yield func(tuple.Tuple) bool) { r.t.All(yield) }

// Shape implements Shaper with the tree's lease-protected walker.
func (r *btreeRel) Shape() core.Shape { return r.t.Shape() }

func (r *btreeRel) SplitRange(from, to tuple.Tuple, n int) []tuple.Tuple {
	return r.t.SplitRange(from, to, n)
}

func (r *btreeRel) MergeFrom(src Relation) {
	if o, ok := src.(*btreeRel); ok {
		r.t.InsertAll(o.t) // the specialised structure-aware merge
		return
	}
	genericMerge(r, src)
}

// ParallelMergeFrom implements ParallelMerger natively: the source tree
// is partitioned into contiguous key ranges and each range is merged by
// its own goroutine with a per-worker hint set — the tree's write-phase
// mode, so no extra synchronisation is needed. A non-btree source falls
// back to the sequential merge.
func (r *btreeRel) ParallelMergeFrom(src Relation, workers int) {
	if o, ok := src.(*btreeRel); ok {
		r.t.ParallelInsertAll(o.t, workers)
		return
	}
	r.MergeFrom(src)
}

type btreeOps struct {
	t *core.Tree
	h *core.Hints // nil in the no-hints configuration
}

func (o *btreeOps) Insert(t tuple.Tuple) bool   { return o.t.InsertHint(t, o.h) }
func (o *btreeOps) Contains(t tuple.Tuple) bool { return o.t.ContainsHint(t, o.h) }

func (o *btreeOps) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, o.t.Arity())
	o.t.RangeHint(lo, hi, o.h, yield)
}

func (o *btreeOps) RangeScan(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	o.t.RangeHint(from, to, o.h, yield)
}

// NewIterator implements CursorOps: the returned iterator seeks with the
// handle's hint set and walks the tree's parent-pointer cursor, so a
// composed join chain re-seeks an inner scan per outer binding without
// re-descending from the root when the hint holds.
func (o *btreeOps) NewIterator() Iterator {
	return &btreeIter{o: o, buf: make(tuple.Tuple, o.t.Arity()), hi: make(tuple.Tuple, 0, o.t.Arity())}
}

// btreeIter is the concurrent B-tree's Iterator: a core.Cursor plus the
// exclusive upper bound of the current range. The bound is copied on
// Seek so callers may reuse their bound buffers between seeks.
type btreeIter struct {
	o       *btreeOps
	c       core.Cursor
	hi      tuple.Tuple
	hiSet   bool
	buf     tuple.Tuple
	started bool
}

func (it *btreeIter) Seek(lo, hi tuple.Tuple) {
	it.c = it.o.t.LowerBoundHint(lo, it.o.h)
	it.hi = append(it.hi[:0], hi...)
	it.hiSet = hi != nil
	it.started = false
}

func (it *btreeIter) Next() bool {
	if !it.started {
		it.started = true
	} else if it.c.Valid() {
		it.c.Next()
	}
	hi := it.hi
	if !it.hiSet {
		hi = nil
	}
	if !it.c.Within(hi) {
		return false
	}
	it.c.CopyTo(it.buf)
	return true
}

func (it *btreeIter) Tuple() tuple.Tuple { return it.buf }

func (o *btreeOps) HintStats() (hits, misses uint64) {
	if o.h == nil {
		return 0, 0
	}
	return o.h.Stats.Hits(), o.h.Stats.Misses()
}

func (o *btreeOps) FlushStats() {
	if o.h != nil {
		o.h.FlushObs()
	}
}

// ---- sequential specialised B-tree ----

type seqRel struct {
	mu    sync.Mutex
	t     *seqbtree.Tree
	hints bool
}

func (r *seqRel) Arity() int  { return r.t.Arity() }
func (r *seqRel) Len() int    { return r.t.Len() }
func (r *seqRel) Empty() bool { return r.t.Empty() }

func (r *seqRel) NewOps() Ops {
	if r.hints {
		return &seqOps{r: r, h: seqbtree.NewHints()}
	}
	return &seqOps{r: r}
}

func (r *seqRel) Scan(yield func(tuple.Tuple) bool) { r.t.Scan(yield) }

func (r *seqRel) MergeFrom(src Relation) {
	if o, ok := src.(*seqRel); ok {
		r.t.InsertAll(o.t)
		return
	}
	genericMerge(r, src)
}

type seqOps struct {
	r *seqRel
	h *seqbtree.Hints
}

func (o *seqOps) Insert(t tuple.Tuple) bool {
	// Global lock: the backend is not thread safe. Hints stay correct
	// under the lock because nodes never move.
	o.r.mu.Lock()
	defer o.r.mu.Unlock()
	return o.r.t.InsertHint(t, o.h)
}

func (o *seqOps) Contains(t tuple.Tuple) bool { return o.r.t.ContainsHint(t, o.h) }

func (o *seqOps) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, o.r.t.Arity())
	for c := o.r.t.LowerBoundHint(lo, o.h); c.Valid(); c.Next() {
		x := c.Tuple()
		if hi != nil && tuple.Compare(x, hi) >= 0 {
			return
		}
		if !yield(x) {
			return
		}
	}
}

// NewIterator implements CursorOps for the sequential specialised
// B-tree. Reads take no lock (read-phase contract), mirroring
// PrefixScan.
func (o *seqOps) NewIterator() Iterator {
	return &seqIter{o: o, hi: make(tuple.Tuple, 0, o.r.t.Arity())}
}

// seqIter is the sequential B-tree's Iterator; Tuple returns the tree's
// own row view, which stays valid until the next write phase.
type seqIter struct {
	o       *seqOps
	c       seqbtree.Cursor
	hi      tuple.Tuple
	hiSet   bool
	cur     tuple.Tuple
	started bool
}

func (it *seqIter) Seek(lo, hi tuple.Tuple) {
	it.c = it.o.r.t.LowerBoundHint(lo, it.o.h)
	it.hi = append(it.hi[:0], hi...)
	it.hiSet = hi != nil
	it.started = false
}

func (it *seqIter) Next() bool {
	if !it.started {
		it.started = true
	} else if it.c.Valid() {
		it.c.Next()
	}
	if !it.c.Valid() {
		return false
	}
	x := it.c.Tuple()
	if it.hiSet && tuple.Compare(x, it.hi) >= 0 {
		return false
	}
	it.cur = x
	return true
}

func (it *seqIter) Tuple() tuple.Tuple { return it.cur }

func (o *seqOps) HintStats() (hits, misses uint64) {
	if o.h == nil {
		return 0, 0
	}
	return o.h.Hits, o.h.Misses
}

func (o *seqOps) FlushStats() {
	if o.h != nil {
		o.h.FlushObs()
	}
}

// ---- red-black tree ----

type rbRel struct {
	mu sync.Mutex
	t  *rbtree.Tree
}

func (r *rbRel) Arity() int  { return r.t.Arity() }
func (r *rbRel) Len() int    { return r.t.Len() }
func (r *rbRel) Empty() bool { return r.t.Empty() }

func (r *rbRel) NewOps() Ops { return r }

func (r *rbRel) Insert(t tuple.Tuple) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Insert(t)
}

func (r *rbRel) Contains(t tuple.Tuple) bool { return r.t.Contains(t) }

func (r *rbRel) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, r.t.Arity())
	r.t.ScanRange(lo, hi, yield)
}

func (r *rbRel) Scan(yield func(tuple.Tuple) bool) { r.t.Scan(yield) }
func (r *rbRel) MergeFrom(src Relation)            { genericMerge(r, src) }

// ---- sequential hash set ----

type hashRel struct {
	mu sync.Mutex
	s  *hashset.Set
}

func (r *hashRel) Arity() int  { return r.s.Arity() }
func (r *hashRel) Len() int    { return r.s.Len() }
func (r *hashRel) Empty() bool { return r.s.Empty() }

func (r *hashRel) NewOps() Ops { return r }

func (r *hashRel) Insert(t tuple.Tuple) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Insert(t)
}

func (r *hashRel) Contains(t tuple.Tuple) bool { return r.s.Contains(t) }

func (r *hashRel) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, r.s.Arity())
	r.s.ScanRange(lo, hi, yield) // filtered full scan: no order available
}

func (r *hashRel) Scan(yield func(tuple.Tuple) bool) { r.s.Scan(yield) }
func (r *hashRel) MergeFrom(src Relation)            { genericMerge(r, src) }

// ---- google-style sequential B-tree ----

type gbRel struct {
	mu sync.Mutex
	t  *gbtree.Tree
}

func (r *gbRel) Arity() int  { return r.t.Arity() }
func (r *gbRel) Len() int    { return r.t.Len() }
func (r *gbRel) Empty() bool { return r.t.Empty() }

func (r *gbRel) NewOps() Ops { return r }

func (r *gbRel) Insert(t tuple.Tuple) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Insert(t)
}

func (r *gbRel) Contains(t tuple.Tuple) bool { return r.t.Contains(t) }

func (r *gbRel) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, r.t.Arity())
	r.t.ScanRange(lo, hi, yield)
}

func (r *gbRel) Scan(yield func(tuple.Tuple) bool) { r.t.Scan(yield) }

func (r *gbRel) MergeFrom(src Relation) {
	if o, ok := src.(*gbRel); ok {
		r.t.InsertAll(o.t)
		return
	}
	genericMerge(r, src)
}

// ---- concurrent (TBB-style) hash set ----

type chashRel struct {
	s *chashset.Set
}

func (r *chashRel) Arity() int  { return r.s.Arity() }
func (r *chashRel) Len() int    { return r.s.Len() }
func (r *chashRel) Empty() bool { return r.s.Empty() }

func (r *chashRel) NewOps() Ops { return r }

func (r *chashRel) Insert(t tuple.Tuple) bool   { return r.s.Insert(t) }
func (r *chashRel) Contains(t tuple.Tuple) bool { return r.s.Contains(t) }

func (r *chashRel) PrefixScan(prefix tuple.Tuple, yield func(tuple.Tuple) bool) {
	lo, hi := prefixBounds(prefix, r.s.Arity())
	r.s.ScanRange(lo, hi, yield)
}

func (r *chashRel) Scan(yield func(tuple.Tuple) bool) { r.s.Scan(yield) }
func (r *chashRel) MergeFrom(src Relation)            { genericMerge(r, src) }

// ParallelMergeFrom implements ParallelMerger for the concurrent hash
// set: the source scan is materialised into one flat buffer and chunked
// across workers, whose inserts are natively thread safe. Unlike the
// B-tree's range partitioning this pays one materialisation pass — the
// hash set has no key-space geometry to split.
func (r *chashRel) ParallelMergeFrom(src Relation, workers int) {
	arity := r.s.Arity()
	var flat []uint64
	src.Scan(func(t tuple.Tuple) bool {
		flat = append(flat, t...)
		return true
	})
	n := len(flat) / arity
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for off := 0; off < len(flat); off += arity {
			r.s.Insert(flat[off : off+arity])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for off := 0; off < len(part); off += arity {
				r.s.Insert(part[off : off+arity])
			}
		}(flat[lo*arity : hi*arity])
	}
	wg.Wait()
}
