package relation

import (
	"sort"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// Snapshot is an immutable point-in-time view of a relation's contents.
// All methods are safe for concurrent use by any number of goroutines,
// concurrently with writers mutating the live relation the snapshot was
// taken from. Ordered methods (bounds, Scan) follow lexicographic tuple
// order regardless of the backend's native storage order.
type Snapshot interface {
	// Arity returns the tuple width.
	Arity() int
	// Len returns the number of tuples in the snapshot.
	Len() int
	// Contains reports membership in the snapshot.
	Contains(t tuple.Tuple) bool
	// LowerBound returns the smallest tuple >= t, or ok=false.
	LowerBound(t tuple.Tuple) (tuple.Tuple, bool)
	// UpperBound returns the smallest tuple > t, or ok=false.
	UpperBound(t tuple.Tuple) (tuple.Tuple, bool)
	// Scan iterates in lexicographic order over all tuples x with
	// from <= x < to (nil from means "from the start", nil to "to the
	// end"), yielding a transient buffer — clone to retain.
	Scan(from, to tuple.Tuple, yield func(t tuple.Tuple) bool)
}

// Snapshotter is implemented by relations that can capture a consistent
// snapshot natively — for the core B-tree an O(1) epoch capture
// (core.Tree.Snapshot, DESIGN.md §14). Snapshot must be called from a
// quiescent point: no mutation in flight, matching the Len contract.
type Snapshotter interface {
	Snapshot() Snapshot
}

// ExportRange materialises every snapshot tuple x with from <= x < to
// (nil bounds are open) into an owned, sorted, duplicate-free slice —
// the relation-level twin of core.Snapshot.ExportRange, usable with
// any Snapshot backend. The result satisfies the input contract of
// core.Tree.BuildFromSorted, so an exported range bulk-loads directly
// into a fresh tree (the cluster rebalance handoff, DESIGN.md §15).
func ExportRange(s Snapshot, from, to tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	s.Scan(from, to, func(t tuple.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// SnapshotOf captures a snapshot of r: natively when the backend
// implements Snapshotter, otherwise by materialising a sorted copy of
// the current contents (O(n log n) and a full copy — fine for the
// baseline backends it exists to serve). Like Snapshotter.Snapshot it
// must be called from a quiescent point.
func SnapshotOf(r Relation) Snapshot {
	if s, ok := r.(Snapshotter); ok {
		return s.Snapshot()
	}
	arity := r.Arity()
	rows := make([]tuple.Tuple, 0, r.Len())
	r.Scan(func(t tuple.Tuple) bool {
		rows = append(rows, t.Clone())
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return tuple.Less(rows[i], rows[j]) })
	return &sortedSnapshot{arity: arity, rows: rows}
}

// Snapshot implements Snapshotter on the core tree backend: an O(1)
// epoch capture whose cost is paid lazily by the first writer to touch
// each frozen path.
func (r *btreeRel) Snapshot() Snapshot {
	return coreSnapshot{s: r.t.Snapshot()}
}

// coreSnapshot adapts core.Snapshot's cursor-shaped surface to the
// tuple-shaped Snapshot interface.
type coreSnapshot struct {
	s core.Snapshot
}

func (c coreSnapshot) Arity() int                  { return c.s.Arity() }
func (c coreSnapshot) Len() int                    { return c.s.Len() }
func (c coreSnapshot) Contains(t tuple.Tuple) bool { return c.s.Contains(t) }

func (c coreSnapshot) LowerBound(t tuple.Tuple) (tuple.Tuple, bool) {
	cur := c.s.LowerBound(t)
	if !cur.Valid() {
		return nil, false
	}
	return cur.Tuple(), true
}

func (c coreSnapshot) UpperBound(t tuple.Tuple) (tuple.Tuple, bool) {
	cur := c.s.UpperBound(t)
	if !cur.Valid() {
		return nil, false
	}
	return cur.Tuple(), true
}

func (c coreSnapshot) Scan(from, to tuple.Tuple, yield func(t tuple.Tuple) bool) {
	c.s.Scan(from, to, yield)
}

// sortedSnapshot is the materializing fallback: a sorted copy answering
// by binary search.
type sortedSnapshot struct {
	arity int
	rows  []tuple.Tuple
}

func (s *sortedSnapshot) Arity() int { return s.arity }
func (s *sortedSnapshot) Len() int   { return len(s.rows) }

// search returns the index of the first row >= t (strict=false) or > t
// (strict=true).
func (s *sortedSnapshot) search(t tuple.Tuple, strict bool) int {
	return sort.Search(len(s.rows), func(i int) bool {
		c := tuple.Compare(s.rows[i], t)
		if strict {
			return c > 0
		}
		return c >= 0
	})
}

func (s *sortedSnapshot) Contains(t tuple.Tuple) bool {
	i := s.search(t, false)
	return i < len(s.rows) && tuple.Equal(s.rows[i], t)
}

func (s *sortedSnapshot) LowerBound(t tuple.Tuple) (tuple.Tuple, bool) {
	i := s.search(t, false)
	if i >= len(s.rows) {
		return nil, false
	}
	return s.rows[i].Clone(), true
}

func (s *sortedSnapshot) UpperBound(t tuple.Tuple) (tuple.Tuple, bool) {
	i := s.search(t, true)
	if i >= len(s.rows) {
		return nil, false
	}
	return s.rows[i].Clone(), true
}

func (s *sortedSnapshot) Scan(from, to tuple.Tuple, yield func(t tuple.Tuple) bool) {
	i := 0
	if from != nil {
		i = s.search(from, false)
	}
	buf := make(tuple.Tuple, s.arity)
	for ; i < len(s.rows); i++ {
		if to != nil && tuple.Compare(s.rows[i], to) >= 0 {
			return
		}
		copy(buf, s.rows[i])
		if !yield(buf) {
			return
		}
	}
}
