package relation

import (
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

// TestBtreeSplitterContract: scanning the split ranges back to back must
// reproduce the ordered prefix scan exactly.
func TestBtreeSplitterContract(t *testing.T) {
	r := MustLookup("btree").New(2)
	ops := r.NewOps()
	for x := uint64(0); x < 60; x++ {
		for y := uint64(0); y < 40; y++ {
			ops.Insert(tuple.Tuple{x, y})
		}
	}
	sp, ok := r.(Splitter)
	if !ok {
		t.Fatal("btree relation does not implement Splitter")
	}
	rs, ok := ops.(RangeScanner)
	if !ok {
		t.Fatal("btree ops does not implement RangeScanner")
	}

	lo := tuple.PrefixLowerBound(tuple.Tuple{10}, 2)
	hi := tuple.PrefixUpperBound(tuple.Tuple{40}, 2) // covers x in [10, 40]

	var want []tuple.Tuple
	rs.RangeScan(lo, hi, func(tp tuple.Tuple) bool {
		want = append(want, tp.Clone())
		return true
	})
	if len(want) != 31*40 {
		t.Fatalf("reference range has %d tuples", len(want))
	}

	for _, n := range []int{1, 2, 7, 16} {
		bounds := sp.SplitRange(lo, hi, n)
		for i := 1; i < len(bounds); i++ {
			if tuple.Compare(bounds[i-1], bounds[i]) >= 0 {
				t.Fatalf("n=%d: bounds not increasing", n)
			}
		}
		starts := append([]tuple.Tuple{lo}, bounds...)
		ends := append(append([]tuple.Tuple{}, bounds...), hi)
		var got []tuple.Tuple
		for ri := range starts {
			rs.RangeScan(starts[ri], ends[ri], func(tp tuple.Tuple) bool {
				got = append(got, tp.Clone())
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: ranges cover %d of %d", n, len(got), len(want))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) }) {
			t.Fatalf("n=%d: concatenated ranges unsorted", n)
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("n=%d: tuple %d differs", n, i)
			}
		}
	}
}

// TestOnlyOrderedBackendsSplit: hash-based relations must not claim the
// Splitter capability (the engine falls back to materialised chunking).
func TestOnlyOrderedBackendsSplit(t *testing.T) {
	for _, name := range []string{"hashset", "tbbhash"} {
		if _, ok := MustLookup(name).New(2).(Splitter); ok {
			t.Errorf("%s unexpectedly implements Splitter", name)
		}
	}
	if _, ok := MustLookup("btree").New(2).(Splitter); !ok {
		t.Error("btree must implement Splitter")
	}
	if _, ok := MustLookup("btree-nh").New(2).(Splitter); !ok {
		t.Error("btree-nh must implement Splitter")
	}
}
