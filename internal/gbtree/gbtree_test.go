package gbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"specbtree/internal/tuple"
)

func randTuples(n int, domain uint64, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.Tuple{uint64(rng.Int63n(int64(domain))), uint64(rng.Int63n(int64(domain)))}
	}
	return ts
}

func TestEmpty(t *testing.T) {
	tr := New(2)
	if !tr.Empty() || tr.Len() != 0 {
		t.Error("fresh tree not empty")
	}
	if tr.Contains(tuple.Tuple{1, 2}) {
		t.Error("phantom element")
	}
	if err := tr.Check(); err != nil {
		t.Error(err)
	}
}

func TestInsertContainsModel(t *testing.T) {
	for _, capacity := range []int{3, 4, 16, 63} {
		tr := New(2, capacity)
		model := map[[2]uint64]bool{}
		for _, tp := range randTuples(5000, 150, int64(capacity)) {
			k := [2]uint64{tp[0], tp[1]}
			if tr.Insert(tp) == model[k] {
				t.Fatalf("capacity %d: insert disagreement on %v", capacity, tp)
			}
			model[k] = true
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("capacity %d: Len %d != %d", capacity, tr.Len(), len(model))
		}
		for k := range model {
			if !tr.Contains(tuple.Tuple{k[0], k[1]}) {
				t.Fatalf("capacity %d: %v missing", capacity, k)
			}
		}
	}
}

func TestOrderedInsertAndScan(t *testing.T) {
	tr := New(2, 4)
	const n = 4000
	for i := 0; i < n; i++ {
		if !tr.Insert(tuple.Tuple{uint64(i / 50), uint64(i % 50)}) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	i := 0
	var prev tuple.Tuple
	tr.Scan(func(tp tuple.Tuple) bool {
		if prev != nil && tuple.Compare(prev, tp) >= 0 {
			t.Fatalf("scan out of order at %d", i)
		}
		prev = tp.Clone()
		i++
		return true
	})
	if i != n {
		t.Fatalf("scan visited %d of %d", i, n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	count := 0
	tr.Scan(func(tp tuple.Tuple) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d, want 5", count)
	}
}

func TestScanRange(t *testing.T) {
	tr := New(2, 4)
	for x := uint64(0); x < 30; x++ {
		for y := uint64(0); y < 5; y++ {
			tr.Insert(tuple.Tuple{x, y})
		}
	}
	var got []tuple.Tuple
	tr.ScanRange(tuple.Tuple{10, 0}, tuple.Tuple{12, 0}, func(tp tuple.Tuple) bool {
		got = append(got, tp.Clone())
		return true
	})
	if len(got) != 10 {
		t.Fatalf("range yielded %d, want 10", len(got))
	}
	for i, tp := range got {
		want := tuple.Tuple{10 + uint64(i/5), uint64(i % 5)}
		if !tuple.Equal(tp, want) {
			t.Fatalf("range[%d] = %v, want %v", i, tp, want)
		}
	}
	// Open-ended range.
	count := 0
	tr.ScanRange(tuple.Tuple{28, 0}, nil, func(tuple.Tuple) bool { count++; return true })
	if count != 10 {
		t.Errorf("open range yielded %d, want 10", count)
	}
}

func TestScanRangeMatchesSortedModel(t *testing.T) {
	tr := New(2, 5)
	ts := randTuples(2000, 40, 9)
	seen := map[[2]uint64]bool{}
	var model []tuple.Tuple
	for _, tp := range ts {
		k := [2]uint64{tp[0], tp[1]}
		if !seen[k] {
			seen[k] = true
			model = append(model, tp.Clone())
		}
		tr.Insert(tp)
	}
	sort.Slice(model, func(i, j int) bool { return tuple.Less(model[i], model[j]) })
	f := func(a, b uint8) bool {
		from := tuple.Tuple{uint64(a % 42), 0}
		to := tuple.Tuple{uint64(b % 42), 0}
		if tuple.Compare(from, to) > 0 {
			from, to = to, from
		}
		var got []tuple.Tuple
		tr.ScanRange(from, to, func(tp tuple.Tuple) bool {
			got = append(got, tp.Clone())
			return true
		})
		var want []tuple.Tuple
		for _, m := range model {
			if tuple.Compare(m, from) >= 0 && tuple.Compare(m, to) < 0 {
				want = append(want, m)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !tuple.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateHeavy(t *testing.T) {
	tr := New(1, 4)
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			fresh := tr.Insert(tuple.Tuple{uint64(i)})
			if fresh != (round == 0) {
				t.Fatalf("round %d insert %d returned %v", round, i, fresh)
			}
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
