// Package gbtree is a tuned sequential in-memory B-tree in the style of
// Google's C++ btree containers — the paper's "google btree" baseline
// (Table 1). It is a classic B-tree with elements stored contiguously in
// flat per-node arrays, binary search within nodes, and pre-emptive
// top-down splitting. It is NOT safe for concurrent mutation; the
// evaluation wraps it in a global lock or thread-private reduction for the
// parallel experiments (package syncadapt).
package gbtree

import (
	"fmt"

	"specbtree/internal/tuple"
)

// DefaultCapacity is the default maximum number of elements per node,
// matching the cache-line-oriented sizing of the specialised tree so the
// comparison isolates the synchronisation and hint mechanisms.
const DefaultCapacity = 16

// Tree is a sequential B-tree set of fixed-arity tuples.
type Tree struct {
	arity    int
	capacity int
	root     *node
	size     int
}

type node struct {
	keys     []uint64 // len = count*arity
	children []*node  // nil for leaves; len = count+1 otherwise
}

// New creates an empty tree for tuples with the given number of columns.
func New(arity int, capacity ...int) *Tree {
	c := DefaultCapacity
	if len(capacity) > 0 && capacity[0] != 0 {
		c = capacity[0]
	}
	if arity <= 0 || c < 3 {
		panic(fmt.Sprintf("gbtree: invalid arity %d or capacity %d", arity, c))
	}
	return &Tree{arity: arity, capacity: c}
}

// Arity returns the tuple width.
func (t *Tree) Arity() int { return t.arity }

// Len returns the number of elements.
func (t *Tree) Len() int { return t.size }

// Empty reports whether the set has no elements.
func (t *Tree) Empty() bool { return t.size == 0 }

func (n *node) count(arity int) int { return len(n.keys) / arity }

func (n *node) leaf() bool { return n.children == nil }

// search returns the index of the first element >= v and whether it equals v.
func (n *node) search(arity int, v tuple.Tuple) (int, bool) {
	lo, hi := 0, n.count(arity)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := tuple.CompareWords(n.keys[mid*arity:(mid+1)*arity], v)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Contains reports whether v is in the set.
func (t *Tree) Contains(v tuple.Tuple) bool {
	t.checkArity(v)
	n := t.root
	for n != nil {
		idx, found := n.search(t.arity, v)
		if found {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[idx]
	}
	return false
}

func (t *Tree) checkArity(v tuple.Tuple) {
	if len(v) != t.arity {
		panic(fmt.Sprintf("gbtree: arity-%d tuple in arity-%d tree", len(v), t.arity))
	}
}

// Insert adds v, returning false if already present. Splitting is done
// pre-emptively on the way down, so the insertion is a single descent.
func (t *Tree) Insert(v tuple.Tuple) bool {
	t.checkArity(v)
	if t.root == nil {
		t.root = &node{keys: append([]uint64(nil), v...)}
		t.size++
		return true
	}
	if t.root.count(t.arity) >= t.capacity {
		// Grow a level, then split the old root into the new one.
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	n := t.root
	for {
		idx, found := n.search(t.arity, v)
		if found {
			return false
		}
		if n.leaf() {
			n.insertKeyAt(idx, t.arity, v)
			t.size++
			return true
		}
		child := n.children[idx]
		if child.count(t.arity) >= t.capacity {
			t.splitChild(n, idx)
			// The promoted median may equal or precede v; re-position.
			c := tuple.CompareWords(n.keys[idx*t.arity:(idx+1)*t.arity], v)
			switch {
			case c == 0:
				return false
			case c < 0:
				child = n.children[idx+1]
			default:
				child = n.children[idx]
			}
		}
		n = child
	}
}

// insertKeyAt inserts v at element position idx (leaf form, no child).
func (n *node) insertKeyAt(idx, arity int, v tuple.Tuple) {
	pos := idx * arity
	n.keys = append(n.keys, make([]uint64, arity)...)
	copy(n.keys[pos+arity:], n.keys[pos:])
	copy(n.keys[pos:pos+arity], v)
}

// splitChild splits the full child at position idx of parent p, promoting
// the median into p.
func (t *Tree) splitChild(p *node, idx int) {
	arity := t.arity
	child := p.children[idx]
	cnt := child.count(arity)
	mid := cnt / 2

	median := make([]uint64, arity)
	copy(median, child.keys[mid*arity:(mid+1)*arity])

	right := &node{keys: append([]uint64(nil), child.keys[(mid+1)*arity:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid*arity]

	// Insert median and right into p at idx.
	pos := idx * arity
	p.keys = append(p.keys, make([]uint64, arity)...)
	copy(p.keys[pos+arity:], p.keys[pos:])
	copy(p.keys[pos:pos+arity], median)
	p.children = append(p.children, nil)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = right
}

// Scan iterates over all elements in ascending order.
func (t *Tree) Scan(yield func(tuple.Tuple) bool) {
	t.scanNode(t.root, yield)
}

func (t *Tree) scanNode(n *node, yield func(tuple.Tuple) bool) bool {
	if n == nil {
		return true
	}
	arity := t.arity
	cnt := n.count(arity)
	for i := 0; i < cnt; i++ {
		if !n.leaf() && !t.scanNode(n.children[i], yield) {
			return false
		}
		if !yield(tuple.Tuple(n.keys[i*arity : (i+1)*arity])) {
			return false
		}
	}
	if !n.leaf() {
		return t.scanNode(n.children[cnt], yield)
	}
	return true
}

// ScanRange iterates over elements t with from <= t < to in order
// (to == nil scans to the end).
func (t *Tree) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	t.scanRangeNode(t.root, from, to, yield)
}

func (t *Tree) scanRangeNode(n *node, from, to tuple.Tuple, yield func(tuple.Tuple) bool) bool {
	if n == nil {
		return true
	}
	arity := t.arity
	cnt := n.count(arity)
	start := 0
	if from != nil {
		start, _ = n.search(arity, from)
	}
	for i := start; i < cnt; i++ {
		key := tuple.Tuple(n.keys[i*arity : (i+1)*arity])
		if !n.leaf() && !t.scanRangeNode(n.children[i], from, to, yield) {
			return false
		}
		if to != nil && tuple.Compare(key, to) >= 0 {
			return false
		}
		if from == nil || tuple.Compare(key, from) >= 0 {
			if !yield(key) {
				return false
			}
		}
	}
	if !n.leaf() {
		return t.scanRangeNode(n.children[cnt], from, to, yield)
	}
	return true
}

// InsertAll merges every element of src into t.
func (t *Tree) InsertAll(src *Tree) {
	src.Scan(func(tp tuple.Tuple) bool {
		t.Insert(tp)
		return true
	})
}

// Check validates B-tree invariants for tests.
func (t *Tree) Check() error {
	if t.root == nil {
		return nil
	}
	depth := -1
	n, err := t.checkNode(t.root, nil, nil, 0, &depth)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("gbtree: size %d but %d elements found", t.size, n)
	}
	return nil
}

func (t *Tree) checkNode(n *node, lo, hi tuple.Tuple, level int, leafDepth *int) (int, error) {
	arity := t.arity
	cnt := n.count(arity)
	if cnt == 0 && level > 0 {
		return 0, fmt.Errorf("gbtree: empty non-root node")
	}
	if cnt > t.capacity {
		return 0, fmt.Errorf("gbtree: overfull node (%d > %d)", cnt, t.capacity)
	}
	total := cnt
	for i := 0; i < cnt; i++ {
		key := tuple.Tuple(n.keys[i*arity : (i+1)*arity])
		if i > 0 && tuple.Compare(tuple.Tuple(n.keys[(i-1)*arity:i*arity]), key) >= 0 {
			return 0, fmt.Errorf("gbtree: keys out of order at %d", i)
		}
		if lo != nil && tuple.Compare(key, lo) <= 0 {
			return 0, fmt.Errorf("gbtree: key below separator")
		}
		if hi != nil && tuple.Compare(key, hi) >= 0 {
			return 0, fmt.Errorf("gbtree: key above separator")
		}
	}
	if n.leaf() {
		if *leafDepth == -1 {
			*leafDepth = level
		} else if *leafDepth != level {
			return 0, fmt.Errorf("gbtree: leaves at differing depths")
		}
		return total, nil
	}
	if len(n.children) != cnt+1 {
		return 0, fmt.Errorf("gbtree: %d children for %d keys", len(n.children), cnt)
	}
	for i := 0; i <= cnt; i++ {
		clo, chi := lo, hi
		if i > 0 {
			clo = tuple.Tuple(n.keys[(i-1)*arity : i*arity])
		}
		if i < cnt {
			chi = tuple.Tuple(n.keys[i*arity : (i+1)*arity])
		}
		sub, err := t.checkNode(n.children[i], clo, chi, level+1, leafDepth)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
