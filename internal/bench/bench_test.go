package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMeasureAndThroughput(t *testing.T) {
	d := Measure(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Errorf("Measure returned %v for a 5ms sleep", d)
	}
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Errorf("zero-duration throughput = %f", got)
	}
}

func TestBest(t *testing.T) {
	calls := 0
	got := Best(5, func() float64 {
		calls++
		return float64(calls % 3) // 1, 2, 0, 1, 2
	})
	if calls != 5 {
		t.Errorf("Best ran %d times", calls)
	}
	if got != 2 {
		t.Errorf("Best = %f, want 2", got)
	}
	if Best(0, func() float64 { return 7 }) != 7 {
		t.Error("Best with reps<1 must still measure once")
	}
}

func TestFormatOps(t *testing.T) {
	cases := map[float64]string{
		2.5e9: "2.50G/s",
		3.2e6: "3.20M/s",
		1.5e3: "1.50k/s",
		42:    "42.0/s",
	}
	for in, want := range cases {
		if got := FormatOps(in); got != want {
			t.Errorf("FormatOps(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("figure 3a", "elements", "M inserts/s")
	tbl.SeriesNamed("btree").Add(1e6, 10.5)
	tbl.SeriesNamed("btree").Add(4e6, 9.0)
	tbl.SeriesNamed("rbtset").Add(1e6, 3.25)

	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"figure 3a", "btree", "rbtset", "10.500", "3.250", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	var csv strings.Builder
	tbl.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "x,btree,rbtset" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Errorf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[2], "4e+06,9") {
		t.Errorf("csv row = %q", lines[2])
	}
}

func TestSeriesNamedReuses(t *testing.T) {
	tbl := NewTable("t", "x", "y")
	a := tbl.SeriesNamed("s")
	b := tbl.SeriesNamed("s")
	if a != b {
		t.Error("SeriesNamed created a duplicate")
	}
	if len(tbl.Series) != 1 {
		t.Errorf("table has %d series", len(tbl.Series))
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("1, 4,8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if _, err := ParseIntList("a,b"); err == nil {
		t.Error("bad list accepted")
	}
	if _, err := ParseIntList(""); err == nil {
		t.Error("empty list accepted")
	}
}
