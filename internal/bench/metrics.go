package bench

import (
	"encoding/json"
	"io"

	"specbtree/internal/datalog"
	"specbtree/internal/obs"
)

// MetricsDoc is the JSON document emitted by the commands' -metrics flag:
// one merged observability snapshot (schema, enabled, counters — see
// DESIGN.md §9) annotated with the measurement cell it covers and, for the
// Datalog commands, the per-engine evaluation metrics. Field names are
// part of the stable metrics contract; additions are append-only.
type MetricsDoc struct {
	obs.Snapshot
	// Workload identifies the benchmark cell (figure/table, operation,
	// order, size) the counters were accumulated over.
	Workload string `json:"workload,omitempty"`
	// Structure is the data-structure (relation provider or contestant)
	// name under test.
	Structure string `json:"structure,omitempty"`
	// Threads is the worker count of the cell.
	Threads int `json:"threads,omitempty"`
	// Engines holds one engine-level metrics document per Datalog engine
	// run inside the cell (empty for the raw set benchmarks).
	Engines []datalog.Metrics `json:"engines,omitempty"`
}

// EmitMetrics fills doc's embedded snapshot from the global counter
// registry and writes the document to w as indented JSON. Callers reset
// the registry (obs.Reset) at the start of the measurement cell so the
// snapshot covers exactly that cell.
func EmitMetrics(w io.Writer, doc MetricsDoc) error {
	doc.Snapshot = obs.Take()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
