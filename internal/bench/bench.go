// Package bench provides the measurement and reporting harness shared by
// the benchmark executables under cmd/: wall-clock measurement, throughput
// computation, and the fixed-width table / gnuplot-style series output the
// paper's figures are derived from.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Measure runs f once and returns its wall-clock duration.
func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Best runs the measurement reps times and returns the best (largest)
// result — the standard noise-suppression discipline for throughput
// micro-benchmarks.
func Best(reps int, measure func() float64) float64 {
	if reps < 1 {
		reps = 1
	}
	best := measure()
	for i := 1; i < reps; i++ {
		if v := measure(); v > best {
			best = v
		}
	}
	return best
}

// Throughput converts an operation count and duration into ops/second.
func Throughput(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

// FormatOps renders an ops/s figure in the paper's "million X/s" style.
func FormatOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e9:
		return fmt.Sprintf("%.2fG/s", opsPerSec/1e9)
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.2fk/s", opsPerSec/1e3)
	}
	return fmt.Sprintf("%.1f/s", opsPerSec)
}

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Add appends a measurement to the series.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Table is a figure/table in the making: multiple series over a shared
// x-axis, rendered as a fixed-width grid with one row per x value — the
// textual equivalent of one subplot of the paper.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewTable creates an empty table.
func NewTable(title, xlabel, ylabel string) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Series returns (creating on demand) the series with the given name.
func (t *Table) SeriesNamed(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// xValues returns the sorted union of all x values.
func (t *Table) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s\n", t.Title)
	fmt.Fprintf(w, "# y: %s\n", t.YLabel)
	xs := t.xValues()

	// Header.
	fmt.Fprintf(w, "%-16s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 16+17*len(t.Series)))

	for _, x := range xs {
		fmt.Fprintf(w, "%-16s", formatX(x))
		for _, s := range t.Series {
			y, ok := s.lookup(x)
			if !ok {
				fmt.Fprintf(w, " %16s", "-")
				continue
			}
			fmt.Fprintf(w, " %16.3f", y)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (x, series1, series2, ...).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "x")
	for _, s := range t.Series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range t.xValues() {
		fmt.Fprintf(w, "%g", x)
		for _, s := range t.Series {
			if y, ok := s.lookup(x); ok {
				fmt.Fprintf(w, ",%g", y)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

func (s *Series) lookup(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func formatX(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// ParseIntList parses comma-separated integers ("1,4,8,16").
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			return nil, fmt.Errorf("bench: bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty integer list %q", s)
	}
	return out, nil
}
