// Package obslack implements the paper's future-work proposal (§5):
// a B-slack-style tree synchronised with the paper's own optimistic
// read-write locking scheme ("realizing a version of the B-slack tree
// utilizing our seq-lock-based synchronization scheme has the potential of
// yielding a highly scalable concurrent implementation").
//
// Structure: a classic insert-only B-tree of uint64 keys (the scalar
// domain of the paper's Table 3) with the slack discipline applied at the
// leaf level — a full leaf first tries to shed one key into an adjacent
// sibling through the parent separator, and only splits when both
// neighbours are full. Synchronisation follows internal/core exactly:
// optimistic read leases top-down, exclusive write locks bottom-up, with
// one addition for rotations: the sibling's lock is acquired with a
// non-blocking try (we already hold the leaf and the parent), so the lock
// order child → parent → sibling cannot deadlock against a concurrent
// insert holding the sibling — if the try fails, the leaf simply splits.
//
// Simplification relative to Brown's full B-slack trees (documented in
// DESIGN.md): slack is maintained at the leaf level only; inner nodes
// split in the classic way. This captures the space-efficiency and
// contention behaviour relevant to the paper's speculation while staying
// within the locking rules proven out by the core tree.
package obslack

import (
	"sync/atomic"

	"specbtree/internal/optlock"
)

// DefaultCapacity is the per-node key capacity.
const DefaultCapacity = 16

type node struct {
	lock optlock.Lock

	inner  bool
	parent atomic.Pointer[node]
	pos    atomic.Int32

	count    atomic.Int32
	keys     []atomic.Uint64
	children []atomic.Pointer[node]
}

// Tree is a concurrent optimistic B-slack-style set of uint64 keys.
type Tree struct {
	capacity int
	rootLock optlock.Lock
	root     atomic.Pointer[node]

	// Rotations and splits counted for the slack-effectiveness tests.
	rotations atomic.Uint64
	splits    atomic.Uint64
}

// New creates an empty tree. An optional capacity overrides the default.
func New(capacity ...int) *Tree {
	c := DefaultCapacity
	if len(capacity) > 0 && capacity[0] != 0 {
		c = capacity[0]
	}
	if c < 4 {
		panic("obslack: capacity must be at least 4")
	}
	return &Tree{capacity: c}
}

func (t *Tree) newNode(inner bool) *node {
	n := &node{inner: inner, keys: make([]atomic.Uint64, t.capacity)}
	if inner {
		n.children = make([]atomic.Pointer[node], t.capacity+1)
	}
	return n
}

// Len counts the keys (read phase only).
func (t *Tree) Len() int { return t.countNode(t.root.Load()) }

func (t *Tree) countNode(n *node) int {
	if n == nil {
		return 0
	}
	total := int(n.count.Load())
	if n.inner {
		for i := 0; i <= int(n.count.Load()); i++ {
			total += t.countNode(n.children[i].Load())
		}
	}
	return total
}

// Rotations returns the number of slack rotations performed.
func (t *Tree) Rotations() uint64 { return t.rotations.Load() }

// Splits returns the number of node splits performed.
func (t *Tree) Splits() uint64 { return t.splits.Load() }

// search returns the index of the first key >= k and equality, with
// atomic loads (to be validated by the caller's lease).
func (n *node) search(k uint64) (int, bool) {
	cnt := int(n.count.Load())
	if cnt < 0 {
		cnt = 0
	}
	if cnt > len(n.keys) {
		cnt = len(n.keys)
	}
	for i := 0; i < cnt; i++ {
		v := n.keys[i].Load()
		if v >= k {
			return i, v == k
		}
	}
	return cnt, false
}

func (n *node) child(i int) *node {
	if i < 0 {
		i = 0
	}
	if i >= len(n.children) {
		i = len(n.children) - 1
	}
	return n.children[i].Load()
}

// Contains reports whether k is in the set; optimistic descent.
func (t *Tree) Contains(k uint64) bool {
restart:
	for {
		var cur *node
		var curLease optlock.Lease
		for {
			rootLease := t.rootLock.StartRead()
			cur = t.root.Load()
			if cur == nil {
				if t.rootLock.EndRead(rootLease) {
					return false
				}
				continue
			}
			curLease = cur.lock.StartRead()
			if t.rootLock.EndRead(rootLease) {
				break
			}
		}
		for {
			idx, found := cur.search(k)
			if found {
				if cur.lock.Valid(curLease) {
					return true
				}
				continue restart
			}
			if !cur.inner {
				if cur.lock.Valid(curLease) {
					return false
				}
				continue restart
			}
			next := cur.child(idx)
			if !cur.lock.Valid(curLease) {
				continue restart
			}
			nextLease := next.lock.StartRead()
			if !cur.lock.Valid(curLease) {
				continue restart
			}
			cur, curLease = next, nextLease
		}
	}
}

// Insert adds k, returning false if already present.
func (t *Tree) Insert(k uint64) bool {
	for t.root.Load() == nil {
		if !t.rootLock.TryStartWrite() {
			continue
		}
		if t.root.Load() == nil {
			t.root.Store(t.newNode(false))
		}
		t.rootLock.EndWrite()
	}

restart:
	for {
		var cur *node
		var curLease optlock.Lease
		for {
			rootLease := t.rootLock.StartRead()
			cur = t.root.Load()
			if cur == nil {
				continue
			}
			curLease = cur.lock.StartRead()
			if t.rootLock.EndRead(rootLease) {
				break
			}
		}
		for {
			idx, found := cur.search(k)
			if found {
				if cur.lock.Valid(curLease) {
					return false
				}
				continue restart
			}
			if cur.inner {
				next := cur.child(idx)
				if !cur.lock.Valid(curLease) {
					continue restart
				}
				nextLease := next.lock.StartRead()
				if !cur.lock.Valid(curLease) {
					continue restart
				}
				cur, curLease = next, nextLease
				continue
			}
			if !cur.lock.TryUpgradeToWrite(curLease) {
				continue restart
			}
			if int(cur.count.Load()) >= t.capacity {
				// The slack discipline: rotate into a sibling when
				// possible; split otherwise. Either way, restart.
				if !t.rotate(cur) {
					t.split(cur)
				}
				cur.lock.EndWrite()
				continue restart
			}
			cnt := int(cur.count.Load())
			for i := cnt; i > idx; i-- {
				cur.keys[i].Store(cur.keys[i-1].Load())
			}
			cur.keys[idx].Store(k)
			cur.count.Store(int32(cnt + 1))
			cur.lock.EndWrite()
			return true
		}
	}
}

// lockParent write-locks n's parent bottom-up (the re-read loop of the
// paper's Algorithm 2). Returns nil with the root lock held if n is the
// root.
func (t *Tree) lockParent(n *node) *node {
	parent := n.parent.Load()
	for {
		if parent == nil {
			t.rootLock.StartWrite()
			if p := n.parent.Load(); p != nil {
				t.rootLock.AbortWrite()
				parent = p
				continue
			}
			return nil
		}
		parent.lock.StartWrite()
		if parent == n.parent.Load() {
			return parent
		}
		parent.lock.AbortWrite()
		parent = n.parent.Load()
	}
}

// rotate tries to shed one key of the full, write-locked leaf n into an
// adjacent sibling. The parent is locked bottom-up (blocking, safe); the
// sibling is only tried (non-blocking), keeping the child→parent→sibling
// acquisition order deadlock-free. Returns true if a key moved; the
// parent and sibling locks are released either way, n's lock is kept.
func (t *Tree) rotate(n *node) bool {
	parent := t.lockParent(n)
	if parent == nil {
		t.rootLock.EndWrite()
		return false // the root has no siblings
	}
	defer parent.lock.EndWrite()

	pos := int(n.pos.Load())
	pcnt := int(parent.count.Load())

	// Try the right sibling: n's last key becomes the separator, the old
	// separator enters the sibling's front.
	if pos < pcnt {
		sib := parent.children[pos+1].Load()
		if sib.lock.TryStartWrite() {
			scnt := int(sib.count.Load())
			if !sib.inner && scnt < t.capacity-1 {
				sep := parent.keys[pos].Load()
				cnt := int(n.count.Load())
				last := n.keys[cnt-1].Load()
				n.count.Store(int32(cnt - 1))
				parent.keys[pos].Store(last)
				for i := scnt; i > 0; i-- {
					sib.keys[i].Store(sib.keys[i-1].Load())
				}
				sib.keys[0].Store(sep)
				sib.count.Store(int32(scnt + 1))
				sib.lock.EndWrite()
				t.rotations.Add(1)
				return true
			}
			sib.lock.AbortWrite()
		}
	}
	// Try the left sibling symmetrically.
	if pos > 0 {
		sib := parent.children[pos-1].Load()
		if sib.lock.TryStartWrite() {
			scnt := int(sib.count.Load())
			if !sib.inner && scnt < t.capacity-1 {
				sep := parent.keys[pos-1].Load()
				cnt := int(n.count.Load())
				first := n.keys[0].Load()
				for i := 0; i < cnt-1; i++ {
					n.keys[i].Store(n.keys[i+1].Load())
				}
				n.count.Store(int32(cnt - 1))
				parent.keys[pos-1].Store(first)
				sib.keys[scnt].Store(sep)
				sib.count.Store(int32(scnt + 1))
				sib.lock.EndWrite()
				t.rotations.Add(1)
				return true
			}
			sib.lock.AbortWrite()
		}
	}
	return false
}

// split is Algorithm 2 of the paper, specialised to scalar keys: lock the
// ancestor path bottom-up, split, unlock top-down. Caller holds n's write
// lock (and keeps it).
func (t *Tree) split(n *node) {
	cur := n
	parent := cur.parent.Load()
	var path []*node
	for {
		if parent != nil {
			for {
				parent.lock.StartWrite()
				if parent == cur.parent.Load() {
					break
				}
				parent.lock.AbortWrite()
				parent = cur.parent.Load()
			}
		} else {
			t.rootLock.StartWrite()
			if p := cur.parent.Load(); p != nil {
				t.rootLock.AbortWrite()
				parent = p
				continue
			}
		}
		path = append(path, parent)
		if parent == nil || int(parent.count.Load()) < t.capacity {
			break
		}
		cur = parent
		parent = cur.parent.Load()
	}

	t.doSplit(n)

	for i := len(path) - 1; i >= 0; i-- {
		if path[i] != nil {
			path[i].lock.EndWrite()
		} else {
			t.rootLock.EndWrite()
		}
	}
}

func (t *Tree) doSplit(n *node) {
	parent := n.parent.Load()
	if parent != nil && int(parent.count.Load()) >= t.capacity {
		t.doSplit(parent)
		parent = n.parent.Load()
	}

	cnt := int(n.count.Load())
	mid := cnt / 2
	median := n.keys[mid].Load()

	sibling := t.newNode(n.inner)
	moved := cnt - mid - 1
	for i := 0; i < moved; i++ {
		sibling.keys[i].Store(n.keys[mid+1+i].Load())
	}
	if n.inner {
		for i := 0; i <= moved; i++ {
			c := n.children[mid+1+i].Load()
			sibling.children[i].Store(c)
			c.parent.Store(sibling)
			c.pos.Store(int32(i))
		}
	}
	sibling.count.Store(int32(moved))
	n.count.Store(int32(mid))
	t.splits.Add(1)

	if parent == nil {
		root := t.newNode(true)
		root.keys[0].Store(median)
		root.children[0].Store(n)
		root.children[1].Store(sibling)
		root.count.Store(1)
		n.parent.Store(root)
		n.pos.Store(0)
		sibling.parent.Store(root)
		sibling.pos.Store(1)
		t.root.Store(root)
		return
	}

	idx := int(n.pos.Load())
	pcnt := int(parent.count.Load())
	for i := pcnt; i > idx; i-- {
		parent.keys[i].Store(parent.keys[i-1].Load())
	}
	parent.keys[idx].Store(median)
	for i := pcnt + 1; i > idx+1; i-- {
		c := parent.children[i-1].Load()
		parent.children[i].Store(c)
		c.pos.Store(int32(i))
	}
	parent.children[idx+1].Store(sibling)
	sibling.parent.Store(parent)
	sibling.pos.Store(int32(idx + 1))
	parent.count.Store(int32(pcnt + 1))
}

// Scan iterates over all keys in ascending order (read phase only).
func (t *Tree) Scan(yield func(uint64) bool) {
	t.scanNode(t.root.Load(), yield)
}

func (t *Tree) scanNode(n *node, yield func(uint64) bool) bool {
	if n == nil {
		return true
	}
	cnt := int(n.count.Load())
	for i := 0; i < cnt; i++ {
		if n.inner && !t.scanNode(n.children[i].Load(), yield) {
			return false
		}
		if !yield(n.keys[i].Load()) {
			return false
		}
	}
	if n.inner {
		return t.scanNode(n.children[cnt].Load(), yield)
	}
	return true
}

// Check validates ordering, size consistency and lock quiescence (read
// phase only).
func (t *Tree) Check() error {
	if t.rootLock.IsWriteLocked() {
		return errLocked
	}
	var prev uint64
	first := true
	count := 0
	bad := false
	t.Scan(func(k uint64) bool {
		if !first && k <= prev {
			bad = true
			return false
		}
		first = false
		prev = k
		count++
		return true
	})
	if bad {
		return errOutOfOrder
	}
	if count != t.Len() {
		return errSizeMismatch
	}
	return nil
}

type checkError string

func (e checkError) Error() string { return string(e) }

const (
	errOutOfOrder   = checkError("obslack: keys out of order")
	errSizeMismatch = checkError("obslack: size mismatch")
	errLocked       = checkError("obslack: lock left write-locked")
)
