package obslack

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertContainsModel(t *testing.T) {
	tr := New(8)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(6000))
		if tr.Insert(k) == model[k] {
			t.Fatalf("insert disagreement on %d", k)
		}
		model[k] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(k) {
			t.Fatalf("%d missing", k)
		}
	}
	if tr.Contains(99999) {
		t.Error("phantom key")
	}
}

func TestOrderedInsertUsesRotations(t *testing.T) {
	tr := New(8)
	const n = 20000
	for i := 0; i < n; i++ {
		if !tr.Insert(uint64(i)) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Rotations() == 0 {
		t.Error("slack discipline never rotated on a sequential fill")
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New(6)
	for i := 10000; i > 0; i-- {
		tr.Insert(uint64(i))
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Descending fills rotate into the LEFT sibling.
	if tr.Rotations() == 0 {
		t.Error("no left rotations on a descending fill")
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	tr := New()
	workers, perW := 8, 4000
	if testing.Short() {
		perW = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perW)
			for i := 0; i < perW; i++ {
				if !tr.Insert(base + uint64(i)) {
					t.Errorf("disjoint insert reported duplicate")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perW)
	}
}

func TestConcurrentOverlappingInserts(t *testing.T) {
	tr := New(5) // tiny capacity: rotation/split storm
	workers, n := 8, 2500
	if testing.Short() {
		n = 400
	}
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if tr.Insert(uint64(i)) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("exactly-once violated: %d fresh of %d", total, n)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	tr := New()
	const stable = 4000
	for i := 0; i < stable; i++ {
		tr.Insert(uint64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				tr.Insert(uint64(stable + i*3 + w))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for i := 0; i < stable; i += 7 {
					if !tr.Contains(uint64(i)) {
						t.Errorf("stable key %d vanished", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSlackImprovesFill: on an ordered fill, the rotating tree should use
// no more splits than a plain half-split tree would — the space argument
// of B-slack trees.
func TestSlackImprovesFill(t *testing.T) {
	tr := New(8)
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i))
	}
	// With leaf rotations, ordered fills pack leaves beyond half; the
	// number of splits must stay well below the no-slack bound n/(cap/2).
	noSlackBound := uint64(n / 4) // capacity 8 → half-full leaves of 4
	if s := tr.Splits(); s >= noSlackBound {
		t.Errorf("splits = %d, want < %d (slack should pack nodes)", s, noSlackBound)
	}
}

func TestTinyCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 3 accepted")
		}
	}()
	New(3)
}
