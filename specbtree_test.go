package specbtree

import (
	"sync"
	"testing"
)

func TestPublicBTreeAPI(t *testing.T) {
	tree := NewBTree(2)
	if tree.Arity() != 2 {
		t.Fatalf("arity = %d", tree.Arity())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			for i := 0; i < 500; i++ {
				tree.InsertHint(Tuple{uint64(w*500 + i), uint64(i)}, h)
			}
		}(w)
	}
	wg.Wait()
	if tree.Len() != 2000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	if !tree.Contains(Tuple{42, 42}) {
		t.Error("element missing")
	}
	c := tree.LowerBound(Tuple{100, 0})
	if !c.Valid() || c.Tuple()[0] != 100 {
		t.Error("LowerBound wrong")
	}
	count := 0
	tree.Range(Tuple{100, 0}, Tuple{101, 0}, func(Tuple) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("range saw %d", count)
	}
}

func TestCompareExported(t *testing.T) {
	if Compare(Tuple{1, 2}, Tuple{1, 3}) >= 0 {
		t.Error("Compare wrong")
	}
}

func TestPublicEngineAPI(t *testing.T) {
	prog, err := ParseProgram(`
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, providerName := range ProviderNames() {
		p, err := LookupProvider(providerName)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(prog, EngineOptions{Provider: p, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 20; i++ {
			if err := eng.AddFact("edge", Tuple{i, i + 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if got := eng.Count("path"); got != 20*21/2 {
			t.Fatalf("%s: path = %d, want %d", providerName, got, 20*21/2)
		}
	}
}

func TestMustParseProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseProgram did not panic on bad input")
		}
	}()
	MustParseProgram("p(1).")
}

func TestEngineStatsExported(t *testing.T) {
	prog := MustParseProgram(`
.decl e(x: number, y: number)
.decl p(x: number, y: number)
.output p
p(X, Y) :- e(X, Y).
p(X, Z) :- p(X, Y), e(Y, Z).
`)
	eng, err := NewEngine(prog, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		eng.AddFact("e", Tuple{i, i + 1})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var s EngineStats = eng.Stats()
	if s.ProducedTuples != 55 || s.Inserts == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLookupProviderUnknown(t *testing.T) {
	if _, err := LookupProvider("nonesuch"); err == nil {
		t.Error("unknown provider accepted")
	}
	names := ProviderNames()
	if len(names) < 6 {
		t.Errorf("only %d providers registered", len(names))
	}
}

// TestPublishExpvarIdempotent guards the documented "safe to call more
// than once" contract of the public wrapper: a second registration with
// expvar would panic.
func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar()
}

// TestSnapshotExactAfterFlush is the settlement regression test for the
// -metrics dump paths: hinted operations batch their counters inside the
// hint set (settling every 64 operations), so a run whose length is not
// a multiple of the batch period under-reports unless the worker flushes
// its hints before the snapshot — exactly what the commands do on their
// worker exit paths. The insert count must come out exact, not merely
// close.
func TestSnapshotExactAfterFlush(t *testing.T) {
	if !MetricsEnabled {
		t.Skip("observability compiled out (obsoff)")
	}
	ResetStats()
	tree := NewBTree(1)
	h := NewHints()
	const n = 1000 // deliberately not a multiple of the batch period
	for i := 0; i < n; i++ {
		tree.InsertHint(Tuple{uint64(i)}, h)
	}

	before := Snapshot()
	partial := before.Counters["hint.insert.hits"] + before.Counters["hint.insert.misses"]
	if partial == n {
		t.Fatal("snapshot already exact before flush; batching not exercised")
	}

	h.FlushObs()
	after := Snapshot()
	total := after.Counters["hint.insert.hits"] + after.Counters["hint.insert.misses"]
	if total != n {
		t.Fatalf("hinted inserts settled to %d, want exactly %d", total, n)
	}
	ResetStats()
}
