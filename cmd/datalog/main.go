// Command datalog is a stand-alone Datalog engine in the mould of Soufflé
// (paper §2): it parses a program, loads tab-separated fact files for the
// `.input` relations, evaluates the rules bottom-up in parallel, and
// writes the `.output` relations as tab-separated files.
//
// Usage:
//
//	datalog [-jobs N] [-facts DIR] [-out DIR] [-structure btree] [-stats]
//	        [-strategy stream] [-explain] [-analyze] [-trace FILE]
//	        [-metrics] [-serve ADDR] program.dl
//
// -explain prints the compiled evaluation plan — index assignment per
// atom, pushed-down comparisons, plan-cache status — and exits without
// evaluating. -analyze evaluates and then prints the plan annotated
// with per-node actual row counts (EXPLAIN ANALYZE, DESIGN.md §13).
// -trace forces a trace of the run and dumps it as Chrome trace_event
// JSON to FILE; combined with -strategy, two runs' traces can be
// compared span by span. -strategy selects the evaluator (stream,
// stream-nopush, materialize); see DESIGN.md §12.
//
// Fact files are DIR/<relation>.facts with one tuple per line, columns
// separated by tabs. Unsigned integer columns are used verbatim; any other
// token is interned as a symbol. Output relations are written to
// OUT/<relation>.csv (or stdout with -out "-").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// liveEngine points at the engine currently evaluating, feeding the
// debug server's /debug/treeshape endpoint.
var liveEngine atomic.Pointer[datalog.Engine]

// liveShapes reports the live engine's relation tree shapes.
func liveShapes() map[string]core.Shape {
	if e := liveEngine.Load(); e != nil {
		return e.TreeShapes()
	}
	return nil
}

func main() {
	jobs := flag.Int("jobs", 0, "number of evaluation threads (0 = GOMAXPROCS)")
	factsDir := flag.String("facts", ".", "directory containing <relation>.facts input files")
	outDir := flag.String("out", "-", `output directory, or "-" for stdout`)
	structure := flag.String("structure", "btree", "relation data structure ("+strings.Join(relation.Names(), "|")+")")
	strategy := flag.String("strategy", "stream", "evaluation strategy ("+strings.Join(datalog.Strategies(), "|")+")")
	explain := flag.Bool("explain", false, "print the compiled evaluation plan and exit without evaluating")
	analyze := flag.Bool("analyze", false, "after evaluation, print the plan annotated with actual per-node row counts (EXPLAIN ANALYZE)")
	traceFile := flag.String("trace", "", "force-trace the evaluation and write Chrome trace_event JSON to FILE after the run")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	metrics := flag.Bool("metrics", false, "emit a JSON metrics document to stderr after evaluation")
	profile := flag.Bool("profile", false, "print per-rule evaluation timings")
	emitGo := flag.String("emit-go", "", "synthesise a specialised Go program to FILE instead of evaluating (Soufflé-style compilation)")
	serve := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: datalog [flags] program.dl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *emitGo != "" {
		if err := synthesize(flag.Arg(0), *emitGo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	strat, err := datalog.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *explain {
		if err := explainProgram(flag.Arg(0), *structure, strat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	stopDebug, err := cmdutil.StartDebug(*serve, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()
	if err := run(flag.Arg(0), *jobs, *factsDir, *outDir, *structure, strat, *stats, *metrics, *profile, *analyze, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// explainProgram compiles the program (through the plan cache, so the
// printed cache status is real) and prints the plan without evaluating.
func explainProgram(progPath, structure string, strat datalog.EvalStrategy) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		return err
	}
	provider, err := relation.Lookup(structure)
	if err != nil {
		return err
	}
	eng, err := datalog.New(prog, datalog.Options{Provider: provider, Strategy: strat})
	if err != nil {
		return err
	}
	fmt.Print(eng.Explain())
	return nil
}

// synthesize compiles the program to a specialised Go source file, the
// analogue of Soufflé's C++ synthesis. The output must be built inside
// this module (it imports specbtree/internal/core).
func synthesize(progPath, outPath string) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		return err
	}
	eng, err := datalog.New(prog, datalog.Options{})
	if err != nil {
		return err
	}
	gen, err := eng.SynthesizeGo()
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, gen, 0o644)
}

func run(progPath string, jobs int, factsDir, outDir, structure string, strat datalog.EvalStrategy, stats, metrics, profile, analyze bool, traceFile string) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	prog, err := datalog.Parse(string(src))
	if err != nil {
		return err
	}
	provider, err := relation.Lookup(structure)
	if err != nil {
		return err
	}
	var trace obs.TraceID
	if traceFile != "" {
		if trace = obs.ForceTrace(); trace == 0 {
			fmt.Fprintln(os.Stderr, "warning: -trace writes an empty trace: observability is compiled out (obsoff)")
		}
	}
	eng, err := datalog.New(prog, datalog.Options{Provider: provider, Workers: jobs, Strategy: strat, TraceID: trace})
	if err != nil {
		return err
	}
	liveEngine.Store(eng)

	for _, in := range prog.Inputs {
		decl, _ := prog.Decl(in)
		path := filepath.Join(factsDir, in+".facts")
		if err := loadFacts(eng, in, decl.Arity, path); err != nil {
			return err
		}
	}

	d := bench.Measure(func() { err = eng.Run() })
	if err != nil {
		return err
	}

	for _, out := range prog.Outputs {
		if err := writeRelation(eng, out, outDir); err != nil {
			return err
		}
	}
	if stats {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "evaluation time:   %v (%d threads)\n", d, eng.Workers())
		fmt.Fprintf(os.Stderr, "relations/rules:   %d/%d\n", s.Relations, s.Rules)
		fmt.Fprintf(os.Stderr, "inserts:           %d\n", s.Inserts)
		fmt.Fprintf(os.Stderr, "membership tests:  %d\n", s.MembershipTests)
		fmt.Fprintf(os.Stderr, "lower/upper bound: %d/%d\n", s.LowerBoundCalls, s.UpperBoundCalls)
		fmt.Fprintf(os.Stderr, "input tuples:      %d\n", s.InputTuples)
		fmt.Fprintf(os.Stderr, "produced tuples:   %d\n", s.ProducedTuples)
		fmt.Fprintf(os.Stderr, "hint hit rate:     %.1f%%\n", 100*s.HintRate())
		fmt.Fprintf(os.Stderr, "strategy:          %s\n", eng.Strategy())
		fmt.Fprintf(os.Stderr, "iterator scans:    %d (%d pushdown-tightened)\n", s.StreamScans, s.PushdownScans)
		fmt.Fprintf(os.Stderr, "iterator rows:     %d (%d residual-rejected)\n", s.StreamRows, s.ResidualRows)
		fmt.Fprintf(os.Stderr, "plan cache:        %d hit / %d miss\n", s.PlanCacheHits, s.PlanCacheMiss)
	}
	if profile {
		fmt.Fprintln(os.Stderr, "rule profile (most expensive first):")
		for _, rt := range eng.Profile() {
			fmt.Fprintf(os.Stderr, "  %10v  %6d evals  %s\n", rt.Total, rt.Evaluations, rt.Rule)
		}
	}
	if analyze {
		fmt.Fprint(os.Stderr, eng.ExplainAnalyze())
	}
	if traceFile != "" {
		if err := writeTrace(traceFile); err != nil {
			return err
		}
	}
	if metrics {
		// Relations go to stdout; the metrics document goes to stderr so
		// the two streams stay separable.
		if err := bench.EmitMetrics(os.Stderr, bench.MetricsDoc{
			Workload:  filepath.Base(progPath),
			Structure: structure,
			Threads:   eng.Workers(),
			Engines:   []datalog.Metrics{eng.Metrics()},
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace dumps the retained spans as Chrome trace_event JSON.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadFacts(eng *datalog.Engine, rel string, arity int, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "warning: no facts file for %s (%s)\n", rel, path)
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	t := make(tuple.Tuple, arity)
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) != arity {
			return fmt.Errorf("%s:%d: %d columns, relation %s has arity %d",
				path, lineNo, len(cols), rel, arity)
		}
		for i, c := range cols {
			if v, err := strconv.ParseUint(c, 10, 64); err == nil {
				t[i] = v
			} else {
				t[i] = eng.Symbols().Intern(c)
			}
		}
		if err := eng.AddFact(rel, t); err != nil {
			return fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
	}
	return sc.Err()
}

func writeRelation(eng *datalog.Engine, rel, outDir string) error {
	var w *bufio.Writer
	if outDir == "-" {
		fmt.Printf("--- %s (%d tuples) ---\n", rel, eng.Count(rel))
		w = bufio.NewWriter(os.Stdout)
	} else {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, rel+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	err := eng.Scan(rel, func(t tuple.Tuple) bool {
		for i, v := range t {
			if i > 0 {
				w.WriteByte('\t')
			}
			fmt.Fprintf(w, "%d", v)
		}
		w.WriteByte('\n')
		return true
	})
	if err != nil {
		return err
	}
	return w.Flush()
}
