package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specbtree/internal/datalog"
	"specbtree/internal/obs"
)

// TestRunEndToEnd drives the CLI pipeline: program file + facts directory
// in, output CSVs out.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "tc.dl")
	if err := os.WriteFile(prog, []byte(`
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "edge.facts"),
		[]byte("1\t2\n2\t3\n3\t4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")
	if err := run(prog, 2, dir, out, "btree", datalog.EvalStream, false, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "path.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("path.csv has %d rows, want 6:\n%s", len(lines), data)
	}
	if lines[0] != "1\t2" || lines[5] != "3\t4" {
		t.Errorf("unexpected rows: %v", lines)
	}
}

// TestRunSymbolFacts interns non-numeric fact columns.
func TestRunSymbolFacts(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "call.dl")
	if err := os.WriteFile(prog, []byte(`
.decl call(f: symbol, g: symbol)
.decl reach(f: symbol, g: symbol)
.input call
.output reach
reach(F, G) :- call(F, G).
reach(F, H) :- reach(F, G), call(G, H).
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "call.facts"),
		[]byte("main\thelper\nhelper\tutil\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")
	if err := run(prog, 1, dir, out, "btree", datalog.EvalStream, true, true, true, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "reach.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(data)), "\n")); got != 3 {
		t.Fatalf("reach has %d rows, want 3", got)
	}
}

// TestRunAnalyzeAndTrace drives the -analyze and -trace paths: the run
// must succeed and the trace file must be valid Chrome trace_event JSON
// (an object with a traceEvents array — possibly empty under obsoff).
func TestRunAnalyzeAndTrace(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "tc.dl")
	if err := os.WriteFile(prog, []byte(`
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "edge.facts"),
		[]byte("1\t2\n2\t3\n3\t4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(dir, "trace.json")
	if err := run(prog, 2, dir, filepath.Join(dir, "out"), "btree", datalog.EvalStream, false, false, false, true, traceFile); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, data)
	}
	if obs.Enabled && len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events despite a forced trace")
	}
	if !obs.Enabled && len(doc.TraceEvents) != 0 {
		t.Errorf("obsoff build recorded %d trace events", len(doc.TraceEvents))
	}
}

// TestRunErrors covers the failure paths.
func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing.dl"), 1, dir, "-", "btree", datalog.EvalStream, false, false, false, false, ""); err == nil {
		t.Error("missing program accepted")
	}
	bad := filepath.Join(dir, "bad.dl")
	os.WriteFile(bad, []byte("p(1)."), 0o644)
	if err := run(bad, 1, dir, "-", "btree", datalog.EvalStream, false, false, false, false, ""); err == nil {
		t.Error("undeclared relation accepted")
	}
	okProg := filepath.Join(dir, "ok.dl")
	os.WriteFile(okProg, []byte(".decl p(x: number)\n.output p\np(1).\n"), 0o644)
	if err := run(okProg, 1, dir, "-", "nonesuch", datalog.EvalStream, false, false, false, false, ""); err == nil {
		t.Error("unknown structure accepted")
	}
	// Malformed facts: wrong column count.
	tcProg := filepath.Join(dir, "tc.dl")
	os.WriteFile(tcProg, []byte(".decl e(x: number, y: number)\n.input e\n.output e\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "e.facts"), []byte("1\t2\t3\n"), 0o644)
	if err := run(tcProg, 1, dir, "-", "btree", datalog.EvalStream, false, false, false, false, ""); err == nil {
		t.Error("malformed facts accepted")
	}
}

// TestSynthesize covers the -emit-go pipeline up to the written file.
func TestSynthesize(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "tc.dl")
	os.WriteFile(prog, []byte(`
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`), 0o644)
	out := filepath.Join(dir, "gen.go")
	if err := synthesize(prog, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "core.New(2)", "parallelFor"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("generated file lacks %q", want)
		}
	}
	if err := synthesize(filepath.Join(dir, "missing.dl"), out); err == nil {
		t.Error("missing program accepted")
	}
}

// TestRunMissingFactsWarnsOnly: a missing facts file is a warning, not an
// error (mirrors Soufflé).
func TestRunMissingFactsWarnsOnly(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "p.dl")
	os.WriteFile(prog, []byte(".decl e(x: number)\n.input e\n.output e\n"), 0o644)
	if err := run(prog, 1, dir, filepath.Join(dir, "out"), "btree", datalog.EvalStream, false, false, false, false, ""); err != nil {
		t.Fatalf("missing facts file should not fail: %v", err)
	}
}
