// Command benchpar regenerates Figure 4 of the paper: parallel insertion
// throughput under strong scaling. N 2-D points are pre-partitioned among
// the worker threads (contiguous chunks for the ordered case — the
// NUMA-friendly setup of Figure 4c — or chunks of a shuffled stream for
// the random case) and inserted concurrently into one shared set.
//
// Contestants (paper §4.2): the optimistic B-tree with and without hints,
// a globally locked sequential B-tree ("google btree"), the parallel-
// reduction B-tree, and the concurrent hash set ("TBB hashset").
//
// Usage:
//
//	benchpar [-n 1000000] [-threads 1,2,4,8] [-order both|sorted|random]
//	         [-structs all|name,...] [-csv] [-metrics] [-serve ADDR]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/chashset"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/syncadapt"
	"specbtree/internal/tuple"
	"specbtree/internal/workload"
)

// liveTree points at the specialised B-tree of the cell currently
// running, feeding the debug server's /debug/treeshape endpoint.
var liveTree atomic.Pointer[core.Tree]

// liveShapes reports the live tree's shape under its contestant name.
func liveShapes() map[string]core.Shape {
	if t := liveTree.Load(); t != nil {
		return map[string]core.Shape{"btree": t.Shape()}
	}
	return nil
}

// contestant builds a fresh shared set and returns a per-thread insert
// closure plus an optional finalisation step (the reduction merge).
type contestant struct {
	name string
	make func(threads int) (worker func(id int, part []tuple.Tuple), finish func() int)
}

func contestants() []contestant {
	return []contestant{
		{"btree", func(int) (func(int, []tuple.Tuple), func() int) {
			t := core.New(2)
			liveTree.Store(t)
			return func(_ int, part []tuple.Tuple) {
					h := core.NewHints()
					for _, v := range part {
						t.InsertHint(v, h)
					}
					h.FlushObs() // settle batched counters before the snapshot
				}, func() int {
					return t.Len()
				}
		}},
		{"btree-nh", func(int) (func(int, []tuple.Tuple), func() int) {
			t := core.New(2)
			return func(_ int, part []tuple.Tuple) {
					for _, v := range part {
						t.Insert(v)
					}
				}, func() int {
					return t.Len()
				}
		}},
		{"google-btree", func(int) (func(int, []tuple.Tuple), func() int) {
			t := syncadapt.NewLocked(2)
			return func(_ int, part []tuple.Tuple) {
					for _, v := range part {
						t.Insert(v)
					}
				}, func() int {
					return t.Len()
				}
		}},
		{"reduction-btree", func(int) (func(int, []tuple.Tuple), func() int) {
			r := syncadapt.NewReduction(2)
			return func(_ int, part []tuple.Tuple) {
					w := r.NewWorker()
					for _, v := range part {
						w.Insert(v)
					}
				}, func() int {
					r.Merge() // the concluding parallel reduction is part of the measured work
					return r.Len()
				}
		}},
		{"tbb-hashset", func(int) (func(int, []tuple.Tuple), func() int) {
			s := chashset.New(2)
			return func(_ int, part []tuple.Tuple) {
					for _, v := range part {
						s.Insert(v)
					}
				}, func() int {
					return s.Len()
				}
		}},
	}
}

func main() {
	nFlag := flag.Int("n", 1000000, "number of 2-D points to insert (paper: 100000000)")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts (paper: 1..32 over 4 sockets)")
	orderFlag := flag.String("order", "both", "element order: both|sorted|random")
	structsFlag := flag.String("structs", "all", "comma-separated structure names, or all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	seedFlag := flag.Int64("seed", 1, "shuffle seed for the random-order variant")
	repsFlag := flag.Int("reps", 1, "repetitions per cell; the best run is reported")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document per (threads, structure) cell")
	serveFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	stopDebug, err := cmdutil.StartDebug(*serveFlag, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()

	threads, err := bench.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sel := map[string]bool{}
	if *structsFlag == "all" {
		for _, c := range contestants() {
			sel[c.name] = true
		}
	} else {
		for _, n := range strings.Split(*structsFlag, ",") {
			sel[strings.TrimSpace(n)] = true
		}
	}

	pts := workload.Points2D(*nFlag)
	for _, order := range []string{"sorted", "random"} {
		if *orderFlag != "both" && *orderFlag != order {
			continue
		}
		data := pts
		fig := "4a/4c"
		if order == "random" {
			data = workload.Shuffle(pts, *seedFlag)
			fig = "4b/4d"
		}
		title := fmt.Sprintf("Figure %s: parallel insertion (%s, %d points)", fig, order, len(data))
		tbl := bench.NewTable(title, "threads", "million inserts/s")
		for _, nt := range threads {
			parts := workload.Partition(data, nt)
			for _, c := range contestants() {
				if !sel[c.name] {
					continue
				}
				if *metricsFlag {
					obs.Reset() // counter window covers every repetition of the cell
				}
				mops := bench.Best(*repsFlag, func() float64 { return runOne(c, nt, parts, len(data)) })
				tbl.SeriesNamed(c.name).Add(float64(nt), mops)
				if *metricsFlag {
					bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
						Workload:  "parallel-insert-" + order,
						Structure: c.name,
						Threads:   nt,
					})
				}
			}
		}
		if *csvFlag {
			fmt.Printf("# %s\n", title)
			tbl.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
	}
}

func runOne(c contestant, threads int, parts [][]tuple.Tuple, n int) float64 {
	worker, finish := c.make(threads)
	d := bench.Measure(func() {
		var wg sync.WaitGroup
		for id, part := range parts {
			wg.Add(1)
			go func(id int, part []tuple.Tuple) {
				defer wg.Done()
				worker(id, part)
			}(id, part)
		}
		wg.Wait()
		if got := finish(); got != n {
			panic(fmt.Sprintf("benchpar: %s lost elements: %d of %d", c.name, got, n))
		}
	})
	return bench.Throughput(n, d) / 1e6
}
