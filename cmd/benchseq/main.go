// Command benchseq regenerates Figure 3 of the paper: sequential
// throughput of the performance-critical set operations — insertion,
// membership tests, and full-range scans — in ordered and random order,
// across the investigated data structures (Table 1).
//
// Usage:
//
//	benchseq [-sizes 250000,1000000] [-op all|insert|lookup|scan]
//	         [-order both|sorted|random] [-structs all|name,...] [-csv]
//	         [-metrics] [-serve ADDR]
//
// The paper's sizes (1000² through 10000² elements) can be requested
// verbatim via -sizes; defaults are scaled to finish quickly on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/chashset"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/gbtree"
	"specbtree/internal/hashset"
	"specbtree/internal/obs"
	"specbtree/internal/rbtree"
	"specbtree/internal/seqbtree"
	"specbtree/internal/tuple"
	"specbtree/internal/workload"
)

// liveTree points at the specialised B-tree of the cell currently
// running, feeding the debug server's /debug/treeshape endpoint.
var liveTree atomic.Pointer[core.Tree]

// liveShapes reports the live tree's shape under its contestant name.
func liveShapes() map[string]core.Shape {
	if t := liveTree.Load(); t != nil {
		return map[string]core.Shape{"btree": t.Shape()}
	}
	return nil
}

// contestant is one data-structure configuration under test.
type contestant struct {
	name string
	make func() ops
}

// ops is the uniform operation surface Figure 3 exercises. flush, when
// non-nil, settles batched observability counters (hint sets defer them)
// so -metrics snapshots are exact.
type ops struct {
	insert   func(tuple.Tuple) bool
	contains func(tuple.Tuple) bool
	scan     func(yield func(tuple.Tuple) bool)
	flush    func()
}

func contestants(arity int) []contestant {
	return []contestant{
		{"google-btree", func() ops {
			t := gbtree.New(arity)
			return ops{insert: t.Insert, contains: t.Contains, scan: t.Scan}
		}},
		{"seq-btree", func() ops {
			t := seqbtree.New(arity)
			h := seqbtree.NewHints()
			return ops{
				insert:   func(v tuple.Tuple) bool { return t.InsertHint(v, h) },
				contains: func(v tuple.Tuple) bool { return t.ContainsHint(v, h) },
				scan:     t.Scan,
				flush:    h.FlushObs,
			}
		}},
		{"seq-btree-nh", func() ops {
			t := seqbtree.New(arity)
			return ops{insert: t.Insert, contains: t.Contains, scan: t.Scan}
		}},
		{"btree", func() ops {
			t := core.New(arity)
			liveTree.Store(t)
			h := core.NewHints()
			return ops{
				insert:   func(v tuple.Tuple) bool { return t.InsertHint(v, h) },
				contains: func(v tuple.Tuple) bool { return t.ContainsHint(v, h) },
				scan:     t.All,
				flush:    h.FlushObs,
			}
		}},
		{"btree-nh", func() ops {
			t := core.New(arity)
			return ops{insert: t.Insert, contains: t.Contains, scan: t.All}
		}},
		{"stl-rbtset", func() ops {
			t := rbtree.New(arity)
			return ops{insert: t.Insert, contains: t.Contains, scan: t.Scan}
		}},
		{"stl-hashset", func() ops {
			s := hashset.New(arity)
			return ops{insert: s.Insert, contains: s.Contains, scan: s.Scan}
		}},
		{"tbb-hashset", func() ops {
			s := chashset.New(arity)
			return ops{insert: s.Insert, contains: s.Contains, scan: s.Scan}
		}},
	}
}

func main() {
	sizesFlag := flag.String("sizes", "62500,250000,1000000", "comma-separated element counts (paper: 1000000,4000000,25000000,100000000)")
	opFlag := flag.String("op", "all", "operation: all|insert|lookup|scan")
	orderFlag := flag.String("order", "both", "element order: both|sorted|random")
	structsFlag := flag.String("structs", "all", "comma-separated structure names, or all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	seedFlag := flag.Int64("seed", 1, "shuffle seed for the random-order variants")
	arityFlag := flag.Int("arity", 2, "tuple arity (the paper's footnote: results remain similar for other dimensions)")
	repsFlag := flag.Int("reps", 1, "repetitions per cell; the best run is reported")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document per (size, structure) cell")
	serveFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	stopDebug, err := cmdutil.StartDebug(*serveFlag, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()

	sizes, err := bench.ParseIntList(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sel := selected(*structsFlag, *arityFlag)

	type figure struct {
		id    string
		op    string
		order string
	}
	var figures []figure
	for _, f := range []figure{
		{"3a", "insert", "sorted"},
		{"3b", "insert", "random"},
		{"3c", "lookup", "sorted"},
		{"3d", "lookup", "random"},
		{"3e", "scan", "sorted"},
		{"3f", "scan", "random"},
	} {
		if (*opFlag == "all" || *opFlag == f.op) &&
			(*orderFlag == "both" || *orderFlag == f.order) {
			figures = append(figures, f)
		}
	}

	for _, f := range figures {
		title := fmt.Sprintf("Figure %s: sequential %s (%s order)", f.id, opName(f.op), f.order)
		tbl := bench.NewTable(title, "elements", "million ops/s")
		for _, size := range sizes {
			pts := workload.PointsND(size, *arityFlag)
			data := pts
			if f.order == "random" {
				data = workload.Shuffle(pts, *seedFlag)
			}
			for _, c := range contestants(*arityFlag) {
				if !sel[c.name] {
					continue
				}
				if *metricsFlag {
					obs.Reset() // counter window covers every repetition of the cell
				}
				mops := bench.Best(*repsFlag, func() float64 { return runFigure(c, f.op, data) })
				tbl.SeriesNamed(c.name).Add(float64(len(data)), mops)
				if *metricsFlag {
					bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
						Workload:  fmt.Sprintf("fig%s-%s-%s-n%d", f.id, f.op, f.order, len(data)),
						Structure: c.name,
						Threads:   1,
					})
				}
			}
		}
		if *csvFlag {
			fmt.Printf("# %s\n", title)
			tbl.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
	}
}

func opName(op string) string {
	switch op {
	case "insert":
		return "insertion"
	case "lookup":
		return "membership test"
	case "scan":
		return "full-range scan"
	}
	return op
}

// runFigure measures one (structure, operation, dataset) cell in million
// operations per second.
func runFigure(c contestant, op string, data []tuple.Tuple) float64 {
	o := c.make()
	defer func() {
		if o.flush != nil {
			o.flush()
		}
	}()
	switch op {
	case "insert":
		d := bench.Measure(func() {
			for _, t := range data {
				o.insert(t)
			}
		})
		return bench.Throughput(len(data), d) / 1e6
	case "lookup":
		for _, t := range data {
			o.insert(t)
		}
		d := bench.Measure(func() {
			for _, t := range data {
				if !o.contains(t) {
					panic("benchseq: inserted element missing")
				}
			}
		})
		return bench.Throughput(len(data), d) / 1e6
	case "scan":
		for _, t := range data {
			o.insert(t)
		}
		visited := 0
		d := bench.Measure(func() {
			o.scan(func(tuple.Tuple) bool {
				visited++
				return true
			})
		})
		if visited != len(data) {
			panic(fmt.Sprintf("benchseq: scan visited %d of %d", visited, len(data)))
		}
		return bench.Throughput(visited, d) / 1e6
	}
	panic("benchseq: unknown op " + op)
}

func selected(s string, arity int) map[string]bool {
	sel := map[string]bool{}
	if s == "all" {
		for _, c := range contestants(arity) {
			sel[c.name] = true
		}
		return sel
	}
	for _, n := range strings.Split(s, ",") {
		sel[strings.TrimSpace(n)] = true
	}
	return sel
}
