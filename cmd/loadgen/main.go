// Command loadgen drives a servebtree instance with a seeded mixed
// workload from concurrent pipelined clients and reports throughput and
// latency percentiles. Each client derives its own deterministic
// operation stream from the master seed, so the exact multiset of
// inserted tuples is known in advance regardless of scheduling — after
// the run, loadgen scans the server and compares contents against that
// expectation (a determinism checksum gate): any mismatch aborts with a
// non-zero exit.
//
// Write requests that hit server backpressure (RETRY) are backed off
// and resent, so the delivered workload is identical across runs; the
// retry count is reported.
//
// With -json the command emits a single schema-versioned document
// ("specbtree.bench.serve.v1") on stdout, carrying the host's CPU count
// and GOMAXPROCS alongside the numbers — throughput figures are
// meaningless without them (see EXPERIMENTS.md on single-core runs).
//
// Usage:
//
//	loadgen [-addr localhost:4070] [-clients 8] [-requests 2000]
//	        [-batch 16] [-writes 20] [-space 65536] [-scanlimit 64]
//	        [-seed 1] [-timeout 10s] [-json] [-trace-sample N]
//	        [-addrs host:p0,host:p1,...] [-arity 2] [-verify CHECKSUM]
//	        [-followers f0a,f0b;f1a,...] [-max-stale N]
//
// -trace-sample N traces one in N client requests (N must be a power of
// two; 0, the default, disables tracing) — sampled requests carry their
// trace ID in the wire frame header, so the server's spans join the
// client's under one trace (DESIGN.md §13).
//
// -addrs switches to cluster mode: the comma-separated list names the
// shard servers in shard order, the key space [0, -space) is
// partitioned across them by a band map, and every client routes
// through a shard-aware cluster.Client (inserts and point reads to the
// owning shard, scans fanned out and merged — DESIGN.md §15). The
// determinism gate then verifies the merged global contents, and -json
// emits "specbtree.bench.cluster.v1" instead of the serve schema.
//
// -followers lists per-shard read-replica addresses (comma-separated
// within a shard, semicolon-separated between shards): the workload
// clients then offload point reads and scan pages to followers whose
// replication stamp is within -max-stale committed epochs of the head
// (DESIGN.md §16). The emitted document gains the follower/fallback
// read split and a replication-lag digest sampled from the followers'
// stamps during the run. The determinism gate still scans the leaders:
// followers are bounded-stale by design.
//
// -verify CHECKSUM runs no workload: it scans the relation (single
// server or cluster), recomputes the contents checksum, and exits 0 on
// a match with the given value — the re-verification step of a
// kill-and-recover drill (EXPERIMENTS.md). In cluster mode the shard
// map is a pure function of -addrs and -space, and scans read owned
// ranges only, so both flags must match the run being verified.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"specbtree/internal/bench"
	"specbtree/internal/cluster"
	"specbtree/internal/cmdutil"
	"specbtree/internal/obs"
	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// relClient is the operation surface shared by the single-server
// client (serve.Client) and the cluster routing client
// (cluster.Client); loadgen drives either through it.
type relClient interface {
	Insert(batch []tuple.Tuple) (int, error)
	Contains(t tuple.Tuple) (bool, error)
	LowerBound(v tuple.Tuple) (tuple.Tuple, bool, error)
	UpperBound(v tuple.Tuple) (tuple.Tuple, bool, error)
	Scan(lo, hi tuple.Tuple, limit int) ([]tuple.Tuple, bool, error)
	ScanAll(lo, hi tuple.Tuple, yield func(tuple.Tuple) bool) error
	Close() error
}

// op kinds of the generated schedule.
const (
	opInsert = iota
	opContains
	opLower
	opUpper
	opScan
)

// genOp is one pre-generated request of a client's schedule.
type genOp struct {
	kind  int
	arg   tuple.Tuple   // probe / scan lower bound
	batch []tuple.Tuple // insert batch
}

// latSummary is the latency digest of one request class.
type latSummary struct {
	Count int     `json:"count"`
	P50Ns float64 `json:"p50_ns"`
	P90Ns float64 `json:"p90_ns"`
	P99Ns float64 `json:"p99_ns"`
	MaxNs float64 `json:"max_ns"`
}

// lagSummary is the replication-lag digest of a follower run: head
// minus applied, in committed epochs, sampled from the followers'
// stamps throughout the measured window.
type lagSummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_epochs"`
	P90   float64 `json:"p90_epochs"`
	P99   float64 `json:"p99_epochs"`
	Max   float64 `json:"max_epochs"`
}

// doc is the schema-versioned JSON document emitted by -json.
type doc struct {
	Schema         string     `json:"schema"`
	Shards         int        `json:"shards,omitempty"`
	CPUs           int        `json:"cpus"`
	GoMaxProcs     int        `json:"gomaxprocs"`
	GoVersion      string     `json:"go_version"`
	Seed           int64      `json:"seed"`
	Clients        int        `json:"clients"`
	Requests       int        `json:"requests_per_client"`
	Batch          int        `json:"batch"`
	WritePercent   int        `json:"write_percent"`
	Space          uint64     `json:"space"`
	Seconds        float64    `json:"seconds"`
	TotalRequests  int        `json:"total_requests"`
	RequestsPerSec float64    `json:"requests_per_sec"`
	InsertTuples   int        `json:"insert_tuples"`
	Retries        uint64     `json:"retries"`
	Reconnects     uint64     `json:"reconnects"`
	Read           latSummary `json:"read_latency"`
	Insert         latSummary `json:"insert_latency"`
	// Follower-offload fields, present only when -followers routed reads
	// to replicas (DESIGN.md §16): how many reads each path answered and
	// the replication lag observed while the workload ran.
	FollowerAddrs  int         `json:"follower_addrs,omitempty"`
	MaxStaleEpochs uint64      `json:"max_stale_epochs,omitempty"`
	FollowerReads  uint64      `json:"follower_reads,omitempty"`
	FallbackReads  uint64      `json:"fallback_reads,omitempty"`
	ReplicaLag     *lagSummary `json:"replica_lag,omitempty"`
	// Checksum is an FNV-1a digest of the final relation contents in scan
	// order; identical seeds against an identically pre-loaded server must
	// produce identical checksums.
	Checksum string `json:"checksum"`
	FinalLen int    `json:"final_len"`
	BaseLen  int    `json:"base_len"`
}

// splitmix64 decorrelates (seed, client) into per-client stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// randTuple draws an arity-width tuple with every word in [0, space).
func randTuple(rng *rand.Rand, arity int, space uint64) tuple.Tuple {
	t := make(tuple.Tuple, arity)
	for i := range t {
		t[i] = rng.Uint64() % space
	}
	return t
}

// schedule pre-generates client c's operation stream. Generating up
// front (rather than on the fly) makes the inserted-tuple multiset a
// pure function of the flags, which is what the checksum gate verifies.
func schedule(seed int64, c, requests, batch int, writePct int, arity int, space uint64) []genOp {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed)) ^ splitmix64(uint64(c)+1))))
	ops := make([]genOp, 0, requests)
	for i := 0; i < requests; i++ {
		if int(rng.Uint64()%100) < writePct {
			b := make([]tuple.Tuple, batch)
			for j := range b {
				b[j] = randTuple(rng, arity, space)
			}
			ops = append(ops, genOp{kind: opInsert, batch: b})
			continue
		}
		kind := opContains + int(rng.Uint64()%4)
		ops = append(ops, genOp{kind: kind, arg: randTuple(rng, arity, space)})
	}
	return ops
}

// clientResult carries one client's measurements back to main.
type clientResult struct {
	readNs    []float64
	insertNs  []float64
	retries   uint64
	reconnect uint64
	err       error
}

// runClient replays one schedule against the target, backing off and
// resending on RETRY (the cluster client absorbs RETRY internally, so
// the loop only spins in single-server mode).
func runClient(dial func() (relClient, error), ops []genOp, scanLimit int, timeout time.Duration) clientResult {
	var res clientResult
	c, err := dial()
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	for i := range ops {
		op := &ops[i]
		start := time.Now()
		switch op.kind {
		case opInsert:
			for {
				_, err = c.Insert(op.batch)
				if !errors.Is(err, serve.ErrRetry) {
					break
				}
				res.retries++
				time.Sleep(time.Millisecond)
			}
		case opContains:
			_, err = c.Contains(op.arg)
		case opLower:
			_, _, err = c.LowerBound(op.arg)
		case opUpper:
			_, _, err = c.UpperBound(op.arg)
		case opScan:
			_, _, err = c.Scan(op.arg, nil, scanLimit)
		}
		if err != nil {
			res.err = fmt.Errorf("request %d: %w", i, err)
			return res
		}
		ns := float64(time.Since(start).Nanoseconds())
		if op.kind == opInsert {
			res.insertNs = append(res.insertNs, ns)
		} else {
			res.readNs = append(res.readNs, ns)
		}
	}
	if rc, ok := c.(interface{ Reconnects() uint64 }); ok {
		res.reconnect = rc.Reconnects()
	}
	return res
}

// summarizeLag sorts the lag samples and extracts the epoch digest.
func summarizeLag(lags []float64) *lagSummary {
	if len(lags) == 0 {
		return &lagSummary{}
	}
	sort.Float64s(lags)
	at := func(q float64) float64 {
		return lags[int(q*float64(len(lags)-1))]
	}
	return &lagSummary{
		Count: len(lags),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   lags[len(lags)-1],
	}
}

// summarize sorts the samples and extracts the digest.
func summarize(ns []float64) latSummary {
	if len(ns) == 0 {
		return latSummary{}
	}
	sort.Float64s(ns)
	at := func(q float64) float64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return latSummary{
		Count: len(ns),
		P50Ns: at(0.50),
		P90Ns: at(0.90),
		P99Ns: at(0.99),
		MaxNs: ns[len(ns)-1],
	}
}

// checksumTuples digests tuples (already in scan order) with FNV-1a.
func checksumTuples(ts []tuple.Tuple) string {
	h := fnv.New64a()
	var b [8]byte
	for _, t := range ts {
		for _, v := range t {
			b[0] = byte(v >> 56)
			b[1] = byte(v >> 48)
			b[2] = byte(v >> 40)
			b[3] = byte(v >> 32)
			b[4] = byte(v >> 24)
			b[5] = byte(v >> 16)
			b[6] = byte(v >> 8)
			b[7] = byte(v)
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	addrFlag := flag.String("addr", "localhost:4070", "servebtree address to drive")
	clientsFlag := flag.Int("clients", 8, "concurrent client connections")
	requestsFlag := flag.Int("requests", 2000, "requests per client")
	batchFlag := flag.Int("batch", 16, "tuples per insert batch")
	writesFlag := flag.Int("writes", 20, "percentage of requests that are insert batches")
	spaceFlag := flag.Uint64("space", 1<<16, "key space per tuple word (smaller = more duplicate hits)")
	scanLimitFlag := flag.Int("scanlimit", 64, "result cap per scan request")
	seedFlag := flag.Int64("seed", 1, "workload generator seed")
	timeoutFlag := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonFlag := flag.Bool("json", false, "emit the specbtree.bench.serve.v1 JSON document (cluster mode: specbtree.bench.cluster.v1)")
	traceSampleFlag := flag.Uint64("trace-sample", 0, "trace one in N requests (power of two; 0 disables tracing)")
	addrsFlag := flag.String("addrs", "", "comma-separated shard addresses in shard order: drive a cluster instead of a single server")
	clusterArityFlag := flag.Int("arity", 2, "tuple width in cluster mode (single-server mode learns it from the hello)")
	verifyFlag := flag.String("verify", "", "no workload: scan the relation, compare its checksum against this value, exit 0 on match")
	followersFlag := flag.String("followers", "", "cluster mode: per-shard read-replica addresses, comma-separated within a shard and semicolon-separated between shards; reads offload to them under -max-stale (DESIGN.md §16)")
	maxStaleFlag := flag.Uint64("max-stale", 0, "staleness bound in committed epochs for follower reads (with -followers; 0 = fully caught up only)")
	flag.Parse()
	if *writesFlag < 0 || *writesFlag > 100 {
		fatal(fmt.Errorf("loadgen: -writes %d out of range [0, 100]", *writesFlag))
	}
	if err := cmdutil.SetTraceSample(*traceSampleFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The dial function picks the target shape: a pipelined socket
	// client for one server, or the routing client over a band map
	// partitioning [0, space) when -addrs names a cluster.
	var shardAddrs []string
	if *addrsFlag != "" {
		shardAddrs = strings.Split(*addrsFlag, ",")
	}
	var followers [][]string
	if *followersFlag != "" {
		if shardAddrs == nil {
			fatal(fmt.Errorf("loadgen: -followers requires cluster mode (-addrs)"))
		}
		for _, shard := range strings.Split(*followersFlag, ";") {
			if shard == "" {
				followers = append(followers, nil)
				continue
			}
			followers = append(followers, strings.Split(shard, ","))
		}
	}
	dial := func() (relClient, error) {
		if shardAddrs == nil {
			return serve.Dial(*addrFlag, serve.ClientOptions{Timeout: *timeoutFlag})
		}
		src := cluster.NewStaticMap(cluster.BandMap(len(shardAddrs), *spaceFlag))
		return cluster.NewClient(src, shardAddrs, cluster.ClientOptions{
			Arity: *clusterArityFlag, Timeout: *timeoutFlag,
			Followers: followers, MaxStaleEpochs: *maxStaleFlag,
		})
	}
	// The scout (base scan, -verify, and the final gate scan) always
	// reads from the leaders: followers are bounded-stale by design, and
	// the determinism gate judges the acknowledged leader contents — a
	// follower page trailing the last epoch would fail it spuriously.
	dialScout := func() (relClient, error) {
		if shardAddrs == nil {
			return serve.Dial(*addrFlag, serve.ClientOptions{Timeout: *timeoutFlag})
		}
		src := cluster.NewStaticMap(cluster.BandMap(len(shardAddrs), *spaceFlag))
		return cluster.NewClient(src, shardAddrs, cluster.ClientOptions{
			Arity: *clusterArityFlag, Timeout: *timeoutFlag,
		})
	}

	// One scout connection: learn the arity and capture the base contents
	// the expectation is built on.
	scout, err := dialScout()
	if err != nil {
		fatal(err)
	}
	arity := *clusterArityFlag
	if sc, ok := scout.(*serve.Client); ok {
		arity = sc.Arity()
	}

	if *verifyFlag != "" {
		var final []tuple.Tuple
		if err := scout.ScanAll(nil, nil, func(t tuple.Tuple) bool {
			final = append(final, t.Clone())
			return true
		}); err != nil {
			fatal(fmt.Errorf("loadgen: verify scan: %w", err))
		}
		scout.Close()
		got := checksumTuples(final)
		if got != *verifyFlag {
			fatal(fmt.Errorf("loadgen: verify failed: checksum %s over %d tuples, want %s", got, len(final), *verifyFlag))
		}
		fmt.Printf("loadgen: verify passed: checksum %s over %d tuples\n", got, len(final))
		return
	}

	expected := make(map[string]tuple.Tuple)
	if err := scout.ScanAll(nil, nil, func(t tuple.Tuple) bool {
		expected[tuple.KeyString(t)] = t.Clone()
		return true
	}); err != nil {
		fatal(fmt.Errorf("loadgen: base scan: %w", err))
	}
	baseLen := len(expected)

	schedules := make([][]genOp, *clientsFlag)
	insertTuples := 0
	for c := range schedules {
		schedules[c] = schedule(*seedFlag, c, *requestsFlag, *batchFlag, *writesFlag, arity, *spaceFlag)
		for i := range schedules[c] {
			for _, t := range schedules[c][i].batch {
				expected[tuple.KeyString(t)] = t
				insertTuples++
			}
		}
	}

	// With followers configured, sample their replication stamps while
	// the workload runs: the lag digest (head - applied, in epochs) is
	// what the staleness bound trades against.
	followerReads0 := obs.Value(obs.ReplicaFollowerReads)
	fallbackReads0 := obs.Value(obs.ReplicaFallbackReads)
	var lagMu sync.Mutex
	var lagSamples []float64
	stopLag := make(chan struct{})
	var lagWG sync.WaitGroup
	for s, addrs := range followers {
		for _, a := range addrs {
			lagWG.Add(1)
			go func(shard int, addr string) {
				defer lagWG.Done()
				cl, err := serve.Dial(addr, serve.ClientOptions{
					Arity: arity, Timeout: *timeoutFlag,
					ExpectShard: true, ShardID: uint32(shard),
				})
				if err != nil {
					return
				}
				defer cl.Close()
				tick := time.NewTicker(2 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stopLag:
						return
					case <-tick.C:
					}
					st, err := cl.Stamp()
					if err != nil {
						return
					}
					if st.Head >= st.Applied {
						lagMu.Lock()
						lagSamples = append(lagSamples, float64(st.Head-st.Applied))
						lagMu.Unlock()
					}
				}
			}(s, a)
		}
	}

	results := make([]clientResult, *clientsFlag)
	var wg sync.WaitGroup
	elapsed := bench.Measure(func() {
		for c := 0; c < *clientsFlag; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				results[c] = runClient(dial, schedules[c], *scanLimitFlag, *timeoutFlag)
			}(c)
		}
		wg.Wait()
	})
	close(stopLag)
	lagWG.Wait()
	for c, r := range results {
		if r.err != nil {
			fatal(fmt.Errorf("loadgen: client %d: %w", c, r.err))
		}
	}

	// Determinism checksum gate: the final contents must be exactly the
	// base contents plus every scheduled insert tuple.
	var final []tuple.Tuple
	if err := scout.ScanAll(nil, nil, func(t tuple.Tuple) bool {
		final = append(final, t.Clone())
		return true
	}); err != nil {
		fatal(fmt.Errorf("loadgen: final scan: %w", err))
	}
	scout.Close()
	want := make([]tuple.Tuple, 0, len(expected))
	for _, t := range expected {
		want = append(want, t)
	}
	sort.Slice(want, func(i, j int) bool { return tuple.Less(want[i], want[j]) })
	gotSum, wantSum := checksumTuples(final), checksumTuples(want)
	if len(final) != len(want) || gotSum != wantSum {
		fatal(fmt.Errorf("loadgen: determinism gate failed: server has %d tuples (checksum %s), expected %d (checksum %s)",
			len(final), gotSum, len(want), wantSum))
	}

	schema := "specbtree.bench.serve.v1"
	if shardAddrs != nil {
		schema = "specbtree.bench.cluster.v1"
	}
	d := doc{
		Schema:       schema,
		Shards:       len(shardAddrs),
		CPUs:         runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		Seed:         *seedFlag,
		Clients:      *clientsFlag,
		Requests:     *requestsFlag,
		Batch:        *batchFlag,
		WritePercent: *writesFlag,
		Space:        *spaceFlag,
		Seconds:      elapsed.Seconds(),
		InsertTuples: insertTuples,
		Checksum:     gotSum,
		FinalLen:     len(final),
		BaseLen:      baseLen,
	}
	if followers != nil {
		for _, addrs := range followers {
			d.FollowerAddrs += len(addrs)
		}
		d.MaxStaleEpochs = *maxStaleFlag
		d.FollowerReads = obs.Value(obs.ReplicaFollowerReads) - followerReads0
		d.FallbackReads = obs.Value(obs.ReplicaFallbackReads) - fallbackReads0
		d.ReplicaLag = summarizeLag(lagSamples)
	}
	var readNs, insertNs []float64
	for _, r := range results {
		readNs = append(readNs, r.readNs...)
		insertNs = append(insertNs, r.insertNs...)
		d.Retries += r.retries
		d.Reconnects += r.reconnect
	}
	d.TotalRequests = len(readNs) + len(insertNs)
	d.RequestsPerSec = bench.Throughput(d.TotalRequests, elapsed)
	d.Read = summarize(readNs)
	d.Insert = summarize(insertNs)

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fatal(err)
		}
		return
	}
	render(d)
}

func render(d doc) {
	fmt.Printf("loadgen: %d clients x %d requests (%d%% writes, batch %d, seed %d)\n",
		d.Clients, d.Requests, d.WritePercent, d.Batch, d.Seed)
	fmt.Printf("  elapsed:    %.3fs (%s requests)\n", d.Seconds, bench.FormatOps(d.RequestsPerSec))
	fmt.Printf("  reads:      %d requests, p50 %.0fns p90 %.0fns p99 %.0fns max %.0fns\n",
		d.Read.Count, d.Read.P50Ns, d.Read.P90Ns, d.Read.P99Ns, d.Read.MaxNs)
	fmt.Printf("  inserts:    %d batches (%d tuples), p50 %.0fns p90 %.0fns p99 %.0fns max %.0fns\n",
		d.Insert.Count, d.InsertTuples, d.Insert.P50Ns, d.Insert.P90Ns, d.Insert.P99Ns, d.Insert.MaxNs)
	fmt.Printf("  backpressure: %d retries, %d reconnects\n", d.Retries, d.Reconnects)
	if d.FollowerAddrs > 0 {
		fmt.Printf("  followers:  %d replicas (stale<=%d epochs): %d follower reads, %d fallbacks; lag p50 %.0f p99 %.0f max %.0f epochs\n",
			d.FollowerAddrs, d.MaxStaleEpochs, d.FollowerReads, d.FallbackReads,
			d.ReplicaLag.P50, d.ReplicaLag.P99, d.ReplicaLag.Max)
	}
	fmt.Printf("  determinism:  checksum %s over %d tuples (base %d) — gate passed\n",
		d.Checksum, d.FinalLen, d.BaseLen)
}
