// Command benchdatalog regenerates Figure 5 and Table 2 of the paper: it
// runs the two real-world-shaped Datalog workloads — a Doop-style
// var-points-to analysis (insertion heavy) and an EC2-style security
// vulnerability analysis (read heavy) — on the engine instantiated with
// each investigated relation data structure, sweeping the thread count.
//
// With -stats it additionally prints the Table 2 block (program
// properties, evaluation statistics) and the hint hit rates reported in
// §4.3 of the paper, for every structure under test. With -metrics it
// emits one JSON metrics document (DESIGN.md §9) per (threads, structure)
// cell, carrying the global observability counters and the per-engine
// evaluation metrics.
//
// With -strategies it runs each cell under several evaluation
// strategies (stream, stream-nopush, materialize — DESIGN.md §12) so
// the streaming rewrite and the pushdown ablation are directly
// comparable; -rounds repeats each cell's evaluation with fresh engines
// sharing a plan cache, exercising the compilation cache the way a
// long-lived service does. With -json it emits the pinned
// strategy-comparison document (specbtree.bench.datalog.v1) for the
// selective-join workload and exits; `make bench-json-datalog` checks
// the result in as BENCH_datalog.json.
//
// Usage:
//
//	benchdatalog [-workload both|pointsto|security|selective] [-size 256]
//	             [-threads 1,2,4,8] [-structs btree,btree-nh,...]
//	             [-strategies stream,...] [-rounds N] [-json]
//	             [-stats] [-metrics] [-csv] [-serve ADDR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/workload"
)

// liveEngine points at the engine of the cell currently evaluating,
// feeding the debug server's /debug/treeshape endpoint.
var liveEngine atomic.Pointer[datalog.Engine]

// liveShapes reports the live engine's relation tree shapes.
func liveShapes() map[string]core.Shape {
	if e := liveEngine.Load(); e != nil {
		return e.TreeShapes()
	}
	return nil
}

// figure5Structs is the paper's Figure 5 line-up.
var figure5Structs = []string{
	"btree", "btree-nh", "rbtset", "hashset", "gbtree", "tbbhash",
}

func main() {
	workloadFlag := flag.String("workload", "both", "workload: both|pointsto|security|selective")
	sizeFlag := flag.Int("size", 256, "workload scale parameter")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts (paper: 1..32)")
	structsFlag := flag.String("structs", strings.Join(figure5Structs, ","), "comma-separated relation providers")
	strategiesFlag := flag.String("strategies", "stream", "comma-separated evaluation strategies ("+strings.Join(datalog.Strategies(), "|")+")")
	roundsFlag := flag.Int("rounds", 1, "evaluations per cell with fresh engines sharing a plan cache (rounds > 1 exercise cache hits)")
	statsFlag := flag.Bool("stats", false, "print Table 2 statistics and hint hit rates")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document per (threads, structure) cell")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonFlag := flag.Bool("json", false, "emit the pinned strategy-comparison document (specbtree.bench.datalog.v1) and exit")
	seedFlag := flag.Int64("seed", 1, "workload generator seed")
	suiteFlag := flag.Int("suite", 1, "number of seeded points-to instances summed per cell (the paper totals 11 DaCapo benchmarks)")
	serveFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	stopDebug, err := cmdutil.StartDebug(*serveFlag, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()

	threads, err := bench.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var structs []string
	for _, s := range strings.Split(*structsFlag, ",") {
		structs = append(structs, strings.TrimSpace(s))
	}
	var strategies []datalog.EvalStrategy
	for _, s := range strings.Split(*strategiesFlag, ",") {
		strat, err := datalog.ParseStrategy(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		strategies = append(strategies, strat)
	}
	if *roundsFlag < 1 {
		fmt.Fprintln(os.Stderr, "-rounds must be at least 1")
		os.Exit(2)
	}

	if *jsonFlag {
		if err := emitJSONDoc(os.Stdout, *sizeFlag, *seedFlag, threads[0], *roundsFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Each experiment row is a suite of workload instances whose runtimes
	// are summed — the paper's Figure 5a totals 11 DaCapo benchmarks.
	var suites [][]workload.DatalogWorkload
	if *workloadFlag == "both" || *workloadFlag == "pointsto" {
		var suite []workload.DatalogWorkload
		for k := 0; k < *suiteFlag; k++ {
			suite = append(suite, workload.PointsTo(*sizeFlag, *seedFlag+int64(k)))
		}
		suites = append(suites, suite)
	}
	if *workloadFlag == "both" || *workloadFlag == "security" {
		suites = append(suites, []workload.DatalogWorkload{workload.Security(*sizeFlag*4, *seedFlag)})
	}
	if *workloadFlag == "selective" {
		suites = append(suites, []workload.DatalogWorkload{workload.Selective(*sizeFlag*4, *seedFlag)})
	}
	if len(suites) == 0 {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadFlag)
		os.Exit(2)
	}

	for _, suite := range suites {
		w := suite[0]
		var title string
		switch w.Name {
		case "security":
			title = "Figure 5b (EC2-style security analysis, read heavy)"
		case "selective":
			title = "Selective-join strategy comparison (DESIGN.md §12)"
		default:
			title = "Figure 5a (Doop-style var-points-to, insertion heavy)"
		}
		if len(suite) > 1 {
			title += fmt.Sprintf(", total over %d instances", len(suite))
		}
		tbl := bench.NewTable(title, "threads", "runtime [ms]")
		// Last engine per series, so -stats can report every provider
		// (not only the specialised B-tree).
		statEngines := map[string]*datalog.Engine{}
		var statSeries []string
		for _, nt := range threads {
			for _, sname := range structs {
				provider, err := relation.Lookup(sname)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				for _, strat := range strategies {
					series := sname
					if len(strategies) > 1 {
						series = sname + ":" + strat.String()
					}
					if *metricsFlag {
						obs.Reset() // one counter window per table cell
					}
					// Fresh engines per round share this cache, so rounds
					// beyond the first hit the cached compilation.
					cache := datalog.NewPlanCache(len(suite) + 1)
					total := 0.0
					var engMetrics []datalog.Metrics
					for round := 0; round < *roundsFlag; round++ {
						engMetrics = engMetrics[:0]
						for _, inst := range suite {
							eng, ms := runOnce(inst, provider, nt, strat, cache)
							total += ms
							if _, seen := statEngines[series]; !seen {
								statSeries = append(statSeries, series)
							}
							statEngines[series] = eng
							if *metricsFlag {
								engMetrics = append(engMetrics, eng.Metrics())
							}
						}
					}
					tbl.SeriesNamed(series).Add(float64(nt), total)
					if *metricsFlag {
						bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
							Workload:  w.Name,
							Structure: series,
							Threads:   nt,
							Engines:   engMetrics,
						})
					}
				}
			}
		}
		if *csvFlag {
			fmt.Printf("# %s\n", title)
			tbl.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
		if *statsFlag {
			for _, series := range statSeries {
				printStats(w, series, statEngines[series])
			}
		}
	}
}

func runOnce(w workload.DatalogWorkload, p relation.Provider, threads int, strat datalog.EvalStrategy, cache *datalog.PlanCache) (*datalog.Engine, float64) {
	prog, err := datalog.Parse(w.Source)
	if err != nil {
		panic(err)
	}
	eng, err := datalog.New(prog, datalog.Options{Provider: p, Workers: threads, Strategy: strat, PlanCache: cache})
	if err != nil {
		panic(err)
	}
	liveEngine.Store(eng)
	for rel, facts := range w.Facts {
		if err := eng.AddFacts(rel, facts); err != nil {
			panic(err)
		}
	}
	d := bench.Measure(func() {
		if err := eng.Run(); err != nil {
			panic(err)
		}
	})
	// Sanity: outputs must be non-empty, or the workload degenerated.
	for _, out := range w.Outputs {
		if eng.Count(out) == 0 {
			fmt.Fprintf(os.Stderr, "warning: %s: output %s is empty\n", w.Name, out)
		}
	}
	return eng, float64(d.Milliseconds()) + float64(d.Microseconds()%1000)/1000
}

// datalogDoc is the pinned strategy-comparison document checked in as
// BENCH_datalog.json (schema specbtree.bench.datalog.v1). It compares
// the evaluation strategies of DESIGN.md §12 on the selective-join
// workload — the shape predicate pushdown is built for — and reports
// the plan-cache economics of repeated rounds.
type datalogDoc struct {
	Schema     string           `json:"schema"`
	CPUs       int              `json:"cpus"`
	GoMaxProcs int              `json:"gomaxprocs"`
	GoVersion  string           `json:"go_version"`
	Seed       int64            `json:"seed"`
	Workload   string           `json:"workload"`
	Size       int              `json:"size"`
	Threads    int              `json:"threads"`
	Rounds     int              `json:"rounds"`
	Strategies []strategyResult `json:"strategies"`
	PlanCache  planCacheDoc     `json:"plan_cache"`
}

type strategyResult struct {
	Strategy       string         `json:"strategy"`
	TotalMillis    float64        `json:"total_ms"`
	PerRoundMillis float64        `json:"per_round_ms"`
	StreamScans    uint64         `json:"stream_scans"`
	PushdownScans  uint64         `json:"pushdown_scans"`
	StreamRows     uint64         `json:"stream_rows"`
	ResidualRows   uint64         `json:"residual_rows"`
	ProducedTuples uint64         `json:"produced_tuples"`
	Outputs        map[string]int `json:"outputs"`
	// SlowdownVsStream is this strategy's per-round runtime divided by
	// the stream strategy's: > 1 means stream is faster.
	SlowdownVsStream float64 `json:"slowdown_vs_stream"`
}

type planCacheDoc struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Invalidations uint64  `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// emitJSONDoc runs every strategy on the selective-join workload for
// `rounds` rounds, all sharing one plan cache (so the program compiles
// once and every later engine binds the cached plan), and writes the
// schema-versioned comparison document.
func emitJSONDoc(out *os.File, size int, seed int64, threads, rounds int) error {
	w := workload.Selective(size*4, seed)
	provider, err := relation.Lookup("btree")
	if err != nil {
		return err
	}
	cache := datalog.NewPlanCache(4)
	doc := datalogDoc{
		Schema:     "specbtree.bench.datalog.v1",
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Seed:       seed,
		Workload:   w.Name,
		Size:       size * 4,
		Threads:    threads,
		Rounds:     rounds,
	}
	for _, strat := range []datalog.EvalStrategy{datalog.EvalStream, datalog.EvalStreamNoPushdown, datalog.EvalMaterialize} {
		res := strategyResult{Strategy: strat.String(), Outputs: map[string]int{}}
		for round := 0; round < rounds; round++ {
			eng, ms := runOnce(w, provider, threads, strat, cache)
			res.TotalMillis += ms
			if round == rounds-1 {
				s := eng.Stats()
				res.StreamScans = s.StreamScans
				res.PushdownScans = s.PushdownScans
				res.StreamRows = s.StreamRows
				res.ResidualRows = s.ResidualRows
				res.ProducedTuples = s.ProducedTuples
				for _, o := range w.Outputs {
					res.Outputs[o] = eng.Count(o)
				}
			}
		}
		res.PerRoundMillis = res.TotalMillis / float64(rounds)
		doc.Strategies = append(doc.Strategies, res)
	}
	base := doc.Strategies[0].PerRoundMillis
	for i := range doc.Strategies {
		if base > 0 {
			doc.Strategies[i].SlowdownVsStream = doc.Strategies[i].PerRoundMillis / base
		}
	}
	cs := cache.Stats()
	doc.PlanCache = planCacheDoc{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Invalidations: cs.Invalidations,
		HitRate:       cs.HitRate(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// printStats renders the Table 2 block for one (workload, structure)
// pair, using the statistics of the last engine run with that structure.
func printStats(w workload.DatalogWorkload, structure string, eng *datalog.Engine) {
	s := eng.Stats()
	fmt.Printf("### Table 2: properties and evaluation statistics (%s, %s)\n", w.Name, structure)
	fmt.Printf("%-24s %12d\n", "relations", s.Relations)
	fmt.Printf("%-24s %12d\n", "rules", s.Rules)
	fmt.Printf("%-24s %12d\n", "inserts", s.Inserts)
	fmt.Printf("%-24s %12d\n", "membership tests", s.MembershipTests)
	fmt.Printf("%-24s %12d\n", "lower_bound calls", s.LowerBoundCalls)
	fmt.Printf("%-24s %12d\n", "upper_bound calls", s.UpperBoundCalls)
	fmt.Printf("%-24s %12d\n", "input tuples", s.InputTuples)
	fmt.Printf("%-24s %12d\n", "produced tuples", s.ProducedTuples)
	fmt.Printf("%-24s %12d\n", "fixpoint iterations", s.Iterations)
	fmt.Printf("%-24s %11.1f%%\n", "hint hit rate", 100*s.HintRate())
	fmt.Printf("%-24s %12s\n", "strategy", eng.Strategy())
	fmt.Printf("%-24s %12d\n", "iterator scans", s.StreamScans)
	fmt.Printf("%-24s %12d\n", "pushdown scans", s.PushdownScans)
	fmt.Printf("%-24s %12d\n", "iterator rows", s.StreamRows)
	fmt.Printf("%-24s %12d\n", "residual rows", s.ResidualRows)
	fmt.Printf("%-24s %6d/%d\n", "plan cache hit/miss", s.PlanCacheHits, s.PlanCacheMiss)
	var outs []string
	outs = append(outs, w.Outputs...)
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Printf("%-24s %12d\n", "|"+o+"|", eng.Count(o))
	}
	fmt.Println()
}
