// Command benchdatalog regenerates Figure 5 and Table 2 of the paper: it
// runs the two real-world-shaped Datalog workloads — a Doop-style
// var-points-to analysis (insertion heavy) and an EC2-style security
// vulnerability analysis (read heavy) — on the engine instantiated with
// each investigated relation data structure, sweeping the thread count.
//
// With -stats it additionally prints the Table 2 block (program
// properties, evaluation statistics) and the hint hit rates reported in
// §4.3 of the paper, for every structure under test. With -metrics it
// emits one JSON metrics document (DESIGN.md §9) per (threads, structure)
// cell, carrying the global observability counters and the per-engine
// evaluation metrics.
//
// Usage:
//
//	benchdatalog [-workload both|pointsto|security] [-size 256]
//	             [-threads 1,2,4,8] [-structs btree,btree-nh,...]
//	             [-stats] [-metrics] [-csv] [-serve ADDR]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/workload"
)

// liveEngine points at the engine of the cell currently evaluating,
// feeding the debug server's /debug/treeshape endpoint.
var liveEngine atomic.Pointer[datalog.Engine]

// liveShapes reports the live engine's relation tree shapes.
func liveShapes() map[string]core.Shape {
	if e := liveEngine.Load(); e != nil {
		return e.TreeShapes()
	}
	return nil
}

// figure5Structs is the paper's Figure 5 line-up.
var figure5Structs = []string{
	"btree", "btree-nh", "rbtset", "hashset", "gbtree", "tbbhash",
}

func main() {
	workloadFlag := flag.String("workload", "both", "workload: both|pointsto|security")
	sizeFlag := flag.Int("size", 256, "workload scale parameter")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts (paper: 1..32)")
	structsFlag := flag.String("structs", strings.Join(figure5Structs, ","), "comma-separated relation providers")
	statsFlag := flag.Bool("stats", false, "print Table 2 statistics and hint hit rates")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document per (threads, structure) cell")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	seedFlag := flag.Int64("seed", 1, "workload generator seed")
	suiteFlag := flag.Int("suite", 1, "number of seeded points-to instances summed per cell (the paper totals 11 DaCapo benchmarks)")
	serveFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	stopDebug, err := cmdutil.StartDebug(*serveFlag, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()

	threads, err := bench.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var structs []string
	for _, s := range strings.Split(*structsFlag, ",") {
		structs = append(structs, strings.TrimSpace(s))
	}

	// Each experiment row is a suite of workload instances whose runtimes
	// are summed — the paper's Figure 5a totals 11 DaCapo benchmarks.
	var suites [][]workload.DatalogWorkload
	if *workloadFlag == "both" || *workloadFlag == "pointsto" {
		var suite []workload.DatalogWorkload
		for k := 0; k < *suiteFlag; k++ {
			suite = append(suite, workload.PointsTo(*sizeFlag, *seedFlag+int64(k)))
		}
		suites = append(suites, suite)
	}
	if *workloadFlag == "both" || *workloadFlag == "security" {
		suites = append(suites, []workload.DatalogWorkload{workload.Security(*sizeFlag*4, *seedFlag)})
	}
	if len(suites) == 0 {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadFlag)
		os.Exit(2)
	}

	for _, suite := range suites {
		w := suite[0]
		fig := "5a (Doop-style var-points-to, insertion heavy)"
		if w.Name == "security" {
			fig = "5b (EC2-style security analysis, read heavy)"
		}
		title := fmt.Sprintf("Figure %s", fig)
		if len(suite) > 1 {
			title += fmt.Sprintf(", total over %d instances", len(suite))
		}
		tbl := bench.NewTable(title, "threads", "runtime [ms]")
		// Last engine per structure, so -stats can report every provider
		// (not only the specialised B-tree).
		statEngines := map[string]*datalog.Engine{}
		for _, nt := range threads {
			for _, sname := range structs {
				provider, err := relation.Lookup(sname)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				if *metricsFlag {
					obs.Reset() // one counter window per (threads, structure) cell
				}
				total := 0.0
				var engMetrics []datalog.Metrics
				for _, inst := range suite {
					eng, ms := runOnce(inst, provider, nt)
					total += ms
					statEngines[sname] = eng
					if *metricsFlag {
						engMetrics = append(engMetrics, eng.Metrics())
					}
				}
				tbl.SeriesNamed(sname).Add(float64(nt), total)
				if *metricsFlag {
					bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
						Workload:  w.Name,
						Structure: sname,
						Threads:   nt,
						Engines:   engMetrics,
					})
				}
			}
		}
		if *csvFlag {
			fmt.Printf("# %s\n", title)
			tbl.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
		if *statsFlag {
			for _, sname := range structs {
				if eng := statEngines[sname]; eng != nil {
					printStats(w, sname, eng)
				}
			}
		}
	}
}

func runOnce(w workload.DatalogWorkload, p relation.Provider, threads int) (*datalog.Engine, float64) {
	prog, err := datalog.Parse(w.Source)
	if err != nil {
		panic(err)
	}
	eng, err := datalog.New(prog, datalog.Options{Provider: p, Workers: threads})
	if err != nil {
		panic(err)
	}
	liveEngine.Store(eng)
	for rel, facts := range w.Facts {
		if err := eng.AddFacts(rel, facts); err != nil {
			panic(err)
		}
	}
	d := bench.Measure(func() {
		if err := eng.Run(); err != nil {
			panic(err)
		}
	})
	// Sanity: outputs must be non-empty, or the workload degenerated.
	for _, out := range w.Outputs {
		if eng.Count(out) == 0 {
			fmt.Fprintf(os.Stderr, "warning: %s: output %s is empty\n", w.Name, out)
		}
	}
	return eng, float64(d.Milliseconds()) + float64(d.Microseconds()%1000)/1000
}

// printStats renders the Table 2 block for one (workload, structure)
// pair, using the statistics of the last engine run with that structure.
func printStats(w workload.DatalogWorkload, structure string, eng *datalog.Engine) {
	s := eng.Stats()
	fmt.Printf("### Table 2: properties and evaluation statistics (%s, %s)\n", w.Name, structure)
	fmt.Printf("%-24s %12d\n", "relations", s.Relations)
	fmt.Printf("%-24s %12d\n", "rules", s.Rules)
	fmt.Printf("%-24s %12d\n", "inserts", s.Inserts)
	fmt.Printf("%-24s %12d\n", "membership tests", s.MembershipTests)
	fmt.Printf("%-24s %12d\n", "lower_bound calls", s.LowerBoundCalls)
	fmt.Printf("%-24s %12d\n", "upper_bound calls", s.UpperBoundCalls)
	fmt.Printf("%-24s %12d\n", "input tuples", s.InputTuples)
	fmt.Printf("%-24s %12d\n", "produced tuples", s.ProducedTuples)
	fmt.Printf("%-24s %12d\n", "fixpoint iterations", s.Iterations)
	fmt.Printf("%-24s %11.1f%%\n", "hint hit rate", 100*s.HintRate())
	var outs []string
	outs = append(outs, w.Outputs...)
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Printf("%-24s %12d\n", "|"+o+"|", eng.Count(o))
	}
	fmt.Println()
}
