// Command benchmerge measures the engine's data-movement spine: the
// specialised tree-into-tree merge (sequential InsertAll vs
// ParallelInsertAll across worker counts), the batched fact-loading path
// (Engine.AddFacts with 1 worker vs the full shard fan-out) and a small
// end-to-end evaluation as a sanity anchor. Every merge measurement
// rebuilds the destination from the same snapshot and the final contents
// are checksummed, so the run doubles as a determinism check: any
// worker-count-dependent difference in the merged tree aborts the run.
//
// With -json the command emits a single schema-versioned document
// ("specbtree.bench.merge.v1") on stdout, carrying the host's CPU count
// and GOMAXPROCS alongside every cell — scaling numbers are meaningless
// without them (see EXPERIMENTS.md on single-core runs).
//
// Usage:
//
//	benchmerge [-size 1200000] [-dst 600000] [-workers 1,2,8]
//	           [-load 200000] [-evalsize 32] [-reps 3] [-seed 1] [-json]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"specbtree/internal/bench"
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/tuple"
	"specbtree/internal/workload"
)

// mergeCell is one (worker count) measurement of the merge leg.
type mergeCell struct {
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Speedup is relative to the workers=1 cell of the same run.
	Speedup float64 `json:"speedup"`
	// Checksum is an FNV-1a digest of the merged contents in scan order;
	// it must be identical across every worker count.
	Checksum string `json:"checksum"`
	Len      int    `json:"len"`
}

// loadCell is one (worker count) measurement of the AddFacts leg.
type loadCell struct {
	Workers     int     `json:"workers"`
	Facts       int     `json:"facts"`
	Distinct    int     `json:"distinct"`
	Seconds     float64 `json:"seconds"`
	FactsPerSec float64 `json:"facts_per_sec"`
}

// evalCell is one (worker count) measurement of the evaluation anchor.
type evalCell struct {
	Workers      int     `json:"workers"`
	Size         int     `json:"size"`
	Seconds      float64 `json:"seconds"`
	OutputTuples int     `json:"output_tuples"`
}

// doc is the schema-versioned JSON document emitted by -json.
type doc struct {
	Schema     string      `json:"schema"`
	CPUs       int         `json:"cpus"`
	GoMaxProcs int         `json:"gomaxprocs"`
	GoVersion  string      `json:"go_version"`
	Seed       int64       `json:"seed"`
	SrcTuples  int         `json:"src_tuples"`
	DstTuples  int         `json:"dst_tuples"`
	Merge      []mergeCell `json:"merge"`
	Load       []loadCell  `json:"load"`
	Evaluate   []evalCell  `json:"evaluate"`
}

const loadProgram = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
`

func main() {
	sizeFlag := flag.Int("size", 1_200_000, "source tree size (tuples) for the merge leg")
	dstFlag := flag.Int("dst", 0, "destination tree size for the merge leg (default size/2)")
	workersFlag := flag.String("workers", "1,2,8", "comma-separated worker counts")
	loadFlag := flag.Int("load", 200_000, "fact count for the AddFacts leg")
	evalFlag := flag.Int("evalsize", 32, "points-to workload scale for the evaluation anchor")
	repsFlag := flag.Int("reps", 3, "repetitions per cell (best kept)")
	seedFlag := flag.Int64("seed", 1, "workload generator seed")
	jsonFlag := flag.Bool("json", false, "emit the specbtree.bench.merge.v1 JSON document")
	flag.Parse()

	workers, err := bench.ParseIntList(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dstN := *dstFlag
	if dstN <= 0 {
		dstN = *sizeFlag / 2
	}

	d := doc{
		Schema:     "specbtree.bench.merge.v1",
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Seed:       *seedFlag,
		SrcTuples:  *sizeFlag,
		DstTuples:  dstN,
	}

	d.Merge = mergeLeg(*sizeFlag, dstN, workers, *repsFlag)
	d.Load = loadLeg(*loadFlag, workers, *repsFlag, *seedFlag)
	d.Evaluate = evalLeg(*evalFlag, workers, *seedFlag)

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	render(d)
}

// sortedTuples returns n distinct arity-2 tuples in ascending order:
// every stride-th point of a dense grid, so merge sources and
// destinations built with different strides overlap partially.
func sortedTuples(n int, stride uint64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		v := uint64(i) * stride
		out[i] = tuple.Tuple{v >> 10, v & 1023}
	}
	return out
}

// mergeLeg measures ParallelInsertAll for each worker count, rebuilding
// the destination from the same sorted snapshot every time. The
// workers=1 cell is the sequential baseline.
func mergeLeg(srcN, dstN int, workers []int, reps int) []mergeCell {
	srcTuples := sortedTuples(srcN, 2) // evens
	dstTuples := sortedTuples(dstN, 3) // multiples of 3: 1/3 overlap
	src := core.New(2)
	src.BuildFromSorted(srcTuples)

	var cells []mergeCell
	var baseline float64
	for _, w := range workers {
		var best time.Duration
		var sum uint64
		var n int
		for r := 0; r < reps; r++ {
			dst := core.New(2)
			dst.BuildFromSorted(dstTuples)
			elapsed := bench.Measure(func() { dst.ParallelInsertAll(src, w) })
			if best == 0 || elapsed < best {
				best = elapsed
			}
			sum, n = checksum(dst)
		}
		c := mergeCell{
			Workers:      w,
			Seconds:      best.Seconds(),
			TuplesPerSec: bench.Throughput(srcN, best),
			Checksum:     fmt.Sprintf("%016x", sum),
			Len:          n,
		}
		if baseline == 0 {
			baseline = c.Seconds
		}
		if c.Seconds > 0 {
			c.Speedup = baseline / c.Seconds
		}
		cells = append(cells, c)
	}

	for _, c := range cells[1:] {
		if c.Checksum != cells[0].Checksum || c.Len != cells[0].Len {
			fmt.Fprintf(os.Stderr,
				"benchmerge: merge result differs across worker counts: workers=%d %s/%d vs workers=%d %s/%d\n",
				c.Workers, c.Checksum, c.Len, cells[0].Workers, cells[0].Checksum, cells[0].Len)
			os.Exit(1)
		}
	}
	return cells
}

// checksum walks the tree in scan order and digests every word.
func checksum(t *core.Tree) (uint64, int) {
	h := fnv.New64a()
	var buf [8]byte
	n := 0
	t.All(func(tp tuple.Tuple) bool {
		for _, w := range tp {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
		n++
		return true
	})
	return h.Sum64(), n
}

// loadLeg measures Engine.AddFacts for each worker count on a fresh
// engine; the batch crosses the parallel sharding threshold.
func loadLeg(facts int, workers []int, reps int, seed int64) []loadCell {
	edges := workload.RandomGraph(facts/4+2, facts, seed)
	var cells []loadCell
	for _, w := range workers {
		var best time.Duration
		distinct := 0
		for r := 0; r < reps; r++ {
			e, err := datalog.New(datalog.MustParse(loadProgram), datalog.Options{Workers: w})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			elapsed := bench.Measure(func() {
				if err := e.AddFacts("edge", edges); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			})
			if best == 0 || elapsed < best {
				best = elapsed
			}
			distinct = e.Count("edge")
		}
		cells = append(cells, loadCell{
			Workers:     w,
			Facts:       len(edges),
			Distinct:    distinct,
			Seconds:     best.Seconds(),
			FactsPerSec: bench.Throughput(len(edges), best),
		})
	}
	return cells
}

// evalLeg runs the points-to workload end to end as a sanity anchor: the
// parallel merge and load paths must not change the fixpoint.
func evalLeg(size int, workers []int, seed int64) []evalCell {
	w := workload.PointsTo(size, seed)
	var cells []evalCell
	for _, workersN := range workers {
		e, err := datalog.New(datalog.MustParse(w.Source), datalog.Options{Workers: workersN})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for rel, facts := range w.Facts {
			if err := e.AddFacts(rel, facts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		elapsed := bench.Measure(func() {
			if err := e.Run(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		})
		out := 0
		for _, rel := range w.Outputs {
			out += e.Count(rel)
		}
		cells = append(cells, evalCell{Workers: workersN, Size: size, Seconds: elapsed.Seconds(), OutputTuples: out})
	}
	for _, c := range cells[1:] {
		if c.OutputTuples != cells[0].OutputTuples {
			fmt.Fprintf(os.Stderr, "benchmerge: evaluation output differs across worker counts: %d vs %d\n",
				c.OutputTuples, cells[0].OutputTuples)
			os.Exit(1)
		}
	}
	return cells
}

func render(d doc) {
	fmt.Printf("benchmerge: %d cpus, GOMAXPROCS=%d, %s\n\n", d.CPUs, d.GoMaxProcs, d.GoVersion)
	t := bench.NewTable(
		fmt.Sprintf("tree merge: %d tuples into %d", d.SrcTuples, d.DstTuples),
		"workers", "million tuples/s (best), speedup vs sequential")
	for _, c := range d.Merge {
		t.SeriesNamed("Mtuples/s").Add(float64(c.Workers), c.TuplesPerSec/1e6)
		t.SeriesNamed("speedup").Add(float64(c.Workers), c.Speedup)
	}
	t.Render(os.Stdout)
	fmt.Printf("merged contents: %d tuples, checksum %s (identical across worker counts)\n\n",
		d.Merge[0].Len, d.Merge[0].Checksum)

	t = bench.NewTable(
		fmt.Sprintf("AddFacts: %d facts (%d distinct)", d.Load[0].Facts, d.Load[0].Distinct),
		"workers", "million facts/s (best)")
	for _, c := range d.Load {
		t.SeriesNamed("Mfacts/s").Add(float64(c.Workers), c.FactsPerSec/1e6)
	}
	t.Render(os.Stdout)

	t = bench.NewTable(
		fmt.Sprintf("points-to evaluation anchor (size %d)", d.Evaluate[0].Size),
		"workers", "seconds")
	for _, c := range d.Evaluate {
		t.SeriesNamed("seconds").Add(float64(c.Workers), c.Seconds)
	}
	t.Render(os.Stdout)
	fmt.Printf("evaluation output: %d tuples (identical across worker counts)\n", d.Evaluate[0].OutputTuples)
}
