// Command servebtree serves one relation — a concurrent specialised
// B-tree — over TCP using the internal/serve wire protocol. Incoming
// operations are phase-scheduled: reads run concurrently between write
// epochs, insert batches are queued and applied in epochs with no reader
// active, preserving the paper's phase-concurrency contract under
// open-world network traffic (see DESIGN.md §11).
//
// The process serves until SIGINT/SIGTERM, then drains gracefully:
// admitted write batches execute and answer, connections close, and a
// serving-layer summary (plus, with -metrics, the full observability
// document) is emitted.
//
// Usage:
//
//	servebtree [-addr localhost:4070] [-arity 2] [-metrics]
//	           [-serve localhost:6060] [-trace-sample N]
//	           [-shard-id N] [-log shard.log]
//	           [-follower-of addr] [-leader-log path]
//
// -trace-sample N traces one in N requests end to end (N must be a
// power of two; 0, the default, disables tracing); the retained spans
// are served at the debug server's /debug/trace endpoint as Chrome
// trace_event JSON (DESIGN.md §13).
//
// -shard-id N serves the relation as shard N of a cluster: the hello
// handshake then verifies each shard-aware client's expected shard
// number and refuses mismatches (DESIGN.md §15). -log PATH gives the
// shard a durable per-epoch insert log: on start the log's committed
// prefix is replayed into the served tree (crash recovery) and every
// write epoch is flushed to it before its acknowledgements, so
// acknowledged inserts survive a kill -9.
//
// -follower-of ADDR runs the process as a streaming read replica of
// the leader at ADDR (DESIGN.md §16): it bootstraps from a leader
// snapshot (or resumes from its own log's watermark), applies the
// committed epoch stream, and serves stamped reads; insert frames are
// refused. Requires -log (the follower's own durable log). SIGHUP
// promotes the follower to a writable leader: with -leader-log PATH
// naming the dead leader's log file (shared storage), the committed
// tail past the follower's watermark is replayed first, so no
// acknowledged write is lost.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specbtree/internal/bench"
	"specbtree/internal/cluster"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/replica"
	"specbtree/internal/serve"
)

func main() {
	addrFlag := flag.String("addr", "localhost:4070", "TCP address to serve the relation on")
	arityFlag := flag.Int("arity", 2, "tuple width of the served relation")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document to stdout on shutdown")
	debugFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the lifetime of the server")
	traceSampleFlag := flag.Uint64("trace-sample", 0, "trace one in N requests (power of two; 0 disables tracing)")
	noSnapshotFlag := flag.Bool("no-snapshot-reads", false, "block reads at the phase gate during write epochs instead of serving them from the last-epoch snapshot (the pre-snapshot baseline, kept for benchmarks)")
	shardFlag := flag.Int("shard-id", -1, "serve as this shard of a cluster (hello handshake verifies it); -1 serves unsharded")
	logFlag := flag.String("log", "", "durable per-epoch insert log path: replayed on start, flushed before every epoch's acks")
	followerFlag := flag.String("follower-of", "", "run as a streaming read replica of the leader at this address (requires -log); SIGHUP promotes to leader")
	leaderLogFlag := flag.String("leader-log", "", "the leader's log path (shared storage); promotion replays its committed tail past the follower's watermark")
	flag.Parse()
	if err := cmdutil.SetTraceSample(*traceSampleFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *followerFlag != "" {
		runFollower(*followerFlag, *leaderLogFlag, *addrFlag, *arityFlag, *shardFlag, *logFlag, *debugFlag, *metricsFlag)
		return
	}

	opts := serve.Options{Arity: *arityFlag, DisableSnapshotReads: *noSnapshotFlag}
	if *shardFlag >= 0 {
		opts.Sharded = true
		opts.ShardID = uint32(*shardFlag)
	}
	var shardLog *cluster.ShardLog
	if *logFlag != "" {
		start := time.Now()
		log, rec, err := cluster.OpenShardLog(*logFlag, *arityFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		shardLog = log
		opts.Tree = cluster.BuildTree(rec.Tuples, *arityFlag)
		opts.EpochLog = log
		// Every logged leader is a replication source: followers may
		// subscribe to the committed epoch stream (DESIGN.md §16).
		opts.Replica = log.ReplicaSource()
		torn := ""
		if rec.TornTail {
			torn = ", torn tail truncated"
		}
		fmt.Fprintf(os.Stderr, "recovered shard %d: %d tuples, %d epochs replayed, watermark %d in %v (%d fence-dropped%s)\n",
			max(*shardFlag, 0), opts.Tree.Len(), rec.Epochs, rec.Watermark, time.Since(start).Round(time.Millisecond), rec.Dropped, torn)
	}

	srv, err := serve.Start(*addrFlag, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopDebug, err := cmdutil.StartDebug(*debugFlag, func() map[string]core.Shape {
		return map[string]core.Shape{"serve": srv.Tree().Shape()}
	})
	if err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()
	fmt.Fprintf(os.Stderr, "serving arity-%d relation on %s\n", srv.Arity(), srv.Addr())

	// Registered after StartDebug's cleanup, so on a signal the relation
	// server drains first (LIFO) and the debug endpoints stay scrapable
	// until the very end.
	cmdutil.OnSignal(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		if shardLog != nil {
			shardLog.Close()
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr,
			"shutdown: drained; len=%d epochs=%d writes=%d reads=%d snapreads=%d retries=%d accepted=%d dropped=%d violations=%d\n",
			srv.Tree().Len(), st.Epochs, st.WriteOps, st.ReadOps, st.SnapshotReads, st.Retries,
			st.ConnsAccepted, st.ConnsDropped, st.PhaseViolations)
		if *metricsFlag {
			if err := bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
				Workload:  "serve",
				Structure: "btree",
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	})
	select {} // serve until signalled; OnSignal tears down and exits
}

// runFollower runs the process as a streaming read replica until
// SIGINT/SIGTERM (shutdown) or SIGHUP (promotion to leader).
func runFollower(leader, leaderLog, addr string, arity, shard int, logPath, debugAddr string, metrics bool) {
	if logPath == "" {
		fmt.Fprintln(os.Stderr, "servebtree: -follower-of requires -log (the follower's own durable log)")
		os.Exit(2)
	}
	f, err := replica.Start(replica.Options{
		Leader:  leader,
		Shard:   uint32(max(shard, 0)),
		Sharded: shard >= 0,
		Arity:   arity,
		LogPath: logPath,
		Addr:    addr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopDebug, err := cmdutil.StartDebug(debugAddr, func() map[string]core.Shape {
		return map[string]core.Shape{"serve": f.Server().Tree().Shape()}
	})
	if err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()
	fmt.Fprintf(os.Stderr, "following %s: serving arity-%d replica on %s (watermark %d)\n",
		leader, arity, f.Addr(), f.Applied())

	// SIGHUP: catch up from the (dead) leader's log when shared, then
	// turn writable. The process keeps serving — as the leader now.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if f.Promoted() {
				continue
			}
			if leaderLog != "" {
				wm, err := f.CatchUpFromLog(leaderLog)
				if err != nil {
					fmt.Fprintf(os.Stderr, "promote: catch-up: %v\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "promote: caught up to epoch %d from %s\n", wm, leaderLog)
			}
			if err := f.Promote(); err != nil {
				fmt.Fprintf(os.Stderr, "promote: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "promoted: serving as leader on %s at epoch %d\n", f.Addr(), f.Applied())
		}
	}()

	cmdutil.OnSignal(func() {
		applied, promoted := f.Applied(), f.Promoted()
		srv, log := f.Server(), f.Log()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		if promoted {
			// Promotion hands server+log ownership to the caller.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			}
			cancel()
			log.Close()
		}
		fmt.Fprintf(os.Stderr, "shutdown: follower drained; applied=%d promoted=%v len=%d\n",
			applied, promoted, srv.Tree().Len())
		if metrics {
			if err := bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
				Workload:  "replica",
				Structure: "btree",
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	})
	select {}
}
