// Command benchtrees regenerates Table 3 of the paper: insertion
// throughput of fixed-size integer keys into concurrent tree data
// structures — the specialised B-tree versus PALM tree, Masstree and
// B-slack tree — in ordered and random order, across thread counts.
//
// Usage:
//
//	benchtrees [-n 1000000] [-threads 1,2,4,8] [-structs all|name,...] [-csv]
//	           [-metrics] [-serve ADDR]
//
// The paper inserts 10,000,000 32-bit integers; pass -n 10000000 for the
// full-size run.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	"sync/atomic"

	"specbtree/internal/bench"
	"specbtree/internal/bslack"
	"specbtree/internal/cmdutil"
	"specbtree/internal/core"
	"specbtree/internal/masstree"
	"specbtree/internal/obs"
	"specbtree/internal/obslack"
	"specbtree/internal/palm"
	"specbtree/internal/tuple"
)

// liveTree points at the specialised B-tree of the cell currently
// running, feeding the debug server's /debug/treeshape endpoint.
var liveTree atomic.Pointer[core.Tree]

// liveShapes reports the live tree's shape under its contestant name.
func liveShapes() map[string]core.Shape {
	if t := liveTree.Load(); t != nil {
		return map[string]core.Shape{"btree": t.Shape()}
	}
	return nil
}

type contestant struct {
	name string
	make func() (insert func(id int, keys []uint64), finish func() int)
}

func contestants() []contestant {
	return []contestant{
		{"btree", func() (func(int, []uint64), func() int) {
			t := core.New(1)
			liveTree.Store(t)
			return func(_ int, keys []uint64) {
					h := core.NewHints()
					buf := make(tuple.Tuple, 1)
					for _, k := range keys {
						buf[0] = k
						t.InsertHint(buf, h)
					}
					h.FlushObs() // settle batched counters before the snapshot
				}, func() int {
					return t.Len()
				}
		}},
		{"palm", func() (func(int, []uint64), func() int) {
			t := palm.New()
			return func(_ int, keys []uint64) {
					for _, k := range keys {
						t.Insert(k)
					}
				}, func() int {
					t.Flush()
					return t.Len()
				}
		}},
		{"masstree", func() (func(int, []uint64), func() int) {
			t := masstree.New()
			return func(_ int, keys []uint64) {
					for _, k := range keys {
						t.Insert(k)
					}
				}, func() int {
					return t.Len()
				}
		}},
		{"bslack", func() (func(int, []uint64), func() int) {
			t := bslack.New()
			return func(_ int, keys []uint64) {
					for _, k := range keys {
						t.Insert(k)
					}
				}, func() int {
					return t.Len()
				}
		}},
		// The paper's future-work proposal: a B-slack-style tree on the
		// optimistic locking scheme (not part of the original Table 3).
		{"bslack-opt", func() (func(int, []uint64), func() int) {
			t := obslack.New()
			return func(_ int, keys []uint64) {
					for _, k := range keys {
						t.Insert(k)
					}
				}, func() int {
					return t.Len()
				}
		}},
	}
}

func main() {
	nFlag := flag.Int("n", 1000000, "number of integer keys (paper: 10000000)")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	structsFlag := flag.String("structs", "all", "comma-separated structure names, or all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	seedFlag := flag.Int64("seed", 1, "shuffle seed")
	repsFlag := flag.Int("reps", 1, "repetitions per cell; the best run is reported")
	metricsFlag := flag.Bool("metrics", false, "emit a JSON metrics document per (threads, structure) cell")
	serveFlag := flag.String("serve", "", "serve /metrics and the debug endpoints on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	stopDebug, err := cmdutil.StartDebug(*serveFlag, liveShapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopDebug()

	threads, err := bench.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sel := map[string]bool{}
	if *structsFlag == "all" {
		for _, c := range contestants() {
			sel[c.name] = true
		}
	} else {
		for _, n := range strings.Split(*structsFlag, ",") {
			sel[strings.TrimSpace(n)] = true
		}
	}

	ordered := make([]uint64, *nFlag)
	for i := range ordered {
		ordered[i] = uint64(i)
	}
	random := make([]uint64, *nFlag)
	copy(random, ordered)
	rng := rand.New(rand.NewSource(*seedFlag))
	rng.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })

	for _, variant := range []struct {
		name string
		keys []uint64
	}{{"ordered", ordered}, {"random", random}} {
		title := fmt.Sprintf("Table 3: %s insertion of %d integer keys", variant.name, *nFlag)
		tbl := bench.NewTable(title, "threads", "million inserts/s")
		for _, nt := range threads {
			parts := partition(variant.keys, nt)
			for _, c := range contestants() {
				if !sel[c.name] {
					continue
				}
				if *metricsFlag {
					obs.Reset() // counter window covers every repetition of the cell
				}
				tbl.SeriesNamed(c.name).Add(float64(nt),
					bench.Best(*repsFlag, func() float64 { return run(c, parts, len(variant.keys)) }))
				if *metricsFlag {
					bench.EmitMetrics(os.Stdout, bench.MetricsDoc{
						Workload:  "table3-" + variant.name,
						Structure: c.name,
						Threads:   nt,
					})
				}
			}
		}
		if *csvFlag {
			fmt.Printf("# %s\n", title)
			tbl.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
	}
}

func partition(keys []uint64, k int) [][]uint64 {
	chunk := (len(keys) + k - 1) / k
	var parts [][]uint64
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		parts = append(parts, keys[lo:hi])
	}
	return parts
}

func run(c contestant, parts [][]uint64, n int) float64 {
	insert, finish := c.make()
	d := bench.Measure(func() {
		var wg sync.WaitGroup
		for id, part := range parts {
			wg.Add(1)
			go func(id int, part []uint64) {
				defer wg.Done()
				insert(id, part)
			}(id, part)
		}
		wg.Wait()
		if got := finish(); got != n {
			panic(fmt.Sprintf("benchtrees: %s lost elements: %d of %d", c.name, got, n))
		}
	})
	return bench.Throughput(n, d) / 1e6
}
