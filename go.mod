module specbtree

go 1.22
