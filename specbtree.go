// Package specbtree is a Go reproduction of "A Specialized B-tree for
// Concurrent Datalog Evaluation" (Jordan, Subotić, Zhao, Scholz — PPoPP
// 2019): a concurrent in-memory B-tree with an optimistic read-write
// locking scheme and operation hints, together with the parallel
// semi-naïve Datalog engine it was built for and every baseline data
// structure of the paper's evaluation.
//
// The package re-exports the primary public surfaces:
//
//   - the specialised concurrent B-tree (NewBTree, BTree, Hints, Cursor),
//   - the Datalog engine (ParseProgram, NewEngine, Engine),
//   - the relation-representation registry used to swap data structures
//     under the engine (LookupProvider, ProviderNames).
//
// The individual substrates (baseline trees, hash sets, workload
// generators) live under internal/; the executables under cmd/ regenerate
// every table and figure of the paper (see DESIGN.md and EXPERIMENTS.md).
package specbtree

import (
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// Tuple is a fixed-arity row of uint64 columns; relations are sets of
// tuples ordered lexicographically.
type Tuple = tuple.Tuple

// Compare three-way-compares two tuples lexicographically.
func Compare(a, b Tuple) int { return tuple.Compare(a, b) }

// BTree is the paper's contribution: a concurrent B-tree specialised for
// Datalog workloads (optimistic locking, operation hints, no deletion).
type BTree = core.Tree

// BTreeOptions configures node capacity.
type BTreeOptions = core.Options

// Hints is a per-goroutine operation-hint set (paper §3.2). Obtain one
// per worker via NewHints and pass it to the *Hint operation variants.
type Hints = core.Hints

// HintStats reports hint hit/miss counters.
type HintStats = core.HintStats

// Cursor is an ordered position in a BTree.
type Cursor = core.Cursor

// NewBTree creates an empty concurrent B-tree for tuples with the given
// number of columns.
func NewBTree(arity int, opts ...BTreeOptions) *BTree { return core.New(arity, opts...) }

// NewHints creates an empty hint set.
func NewHints() *Hints { return core.NewHints() }

// Program is a parsed Datalog program.
type Program = datalog.Program

// Engine evaluates Datalog programs bottom-up with the parallel
// semi-naïve strategy.
type Engine = datalog.Engine

// EngineOptions selects the relation data structure and worker count.
type EngineOptions = datalog.Options

// EngineStats mirrors the evaluation statistics of the paper's Table 2.
type EngineStats = datalog.Stats

// ParseProgram parses Datalog source text.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(src string) *Program { return datalog.MustParse(src) }

// NewEngine compiles a program for evaluation.
func NewEngine(prog *Program, opts EngineOptions) (*Engine, error) {
	return datalog.New(prog, opts)
}

// Provider constructs relation representations; pass one in EngineOptions
// to swap the data structure under the engine (the paper's §4.3 setup).
type Provider = relation.Provider

// LookupProvider returns the relation provider registered under name
// (e.g. "btree", "btree-nh", "rbtset", "hashset", "gbtree", "tbbhash").
func LookupProvider(name string) (Provider, error) { return relation.Lookup(name) }

// ProviderNames lists all registered relation providers.
func ProviderNames() []string { return relation.Names() }
