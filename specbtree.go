// Package specbtree is a Go reproduction of "A Specialized B-tree for
// Concurrent Datalog Evaluation" (Jordan, Subotić, Zhao, Scholz — PPoPP
// 2019): a concurrent in-memory B-tree with an optimistic read-write
// locking scheme and operation hints, together with the parallel
// semi-naïve Datalog engine it was built for and every baseline data
// structure of the paper's evaluation.
//
// The package re-exports the primary public surfaces:
//
//   - the specialised concurrent B-tree (NewBTree, BTree, Hints, Cursor),
//   - the Datalog engine (ParseProgram, NewEngine, Engine),
//   - the relation-representation registry used to swap data structures
//     under the engine (LookupProvider, ProviderNames),
//   - the observability layer (Snapshot, ResetStats, PublishExpvar,
//     FlightRecorder, NewDebugHandler), whose counter and histogram
//     names form the stable metrics contract documented in DESIGN.md §9.
//
// The individual substrates (baseline trees, hash sets, workload
// generators) live under internal/; the executables under cmd/ regenerate
// every table and figure of the paper (see DESIGN.md and EXPERIMENTS.md).
package specbtree

import (
	"net/http"

	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/obshttp"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// Tuple is a fixed-arity row of uint64 columns; relations are sets of
// tuples ordered lexicographically.
type Tuple = tuple.Tuple

// Compare three-way-compares two tuples lexicographically.
func Compare(a, b Tuple) int { return tuple.Compare(a, b) }

// BTree is the paper's contribution: a concurrent B-tree specialised for
// Datalog workloads (optimistic locking, operation hints, no deletion).
type BTree = core.Tree

// BTreeOptions configures node capacity.
type BTreeOptions = core.Options

// Hints is a per-goroutine operation-hint set (paper §3.2). Obtain one
// per worker via NewHints and pass it to the *Hint operation variants.
type Hints = core.Hints

// HintStats reports hint hit/miss counters.
type HintStats = core.HintStats

// Cursor is an ordered position in a BTree.
type Cursor = core.Cursor

// NewBTree creates an empty concurrent B-tree for tuples with the given
// number of columns.
func NewBTree(arity int, opts ...BTreeOptions) *BTree { return core.New(arity, opts...) }

// NewHints creates an empty hint set.
func NewHints() *Hints { return core.NewHints() }

// Program is a parsed Datalog program.
type Program = datalog.Program

// Engine evaluates Datalog programs bottom-up with the parallel
// semi-naïve strategy.
type Engine = datalog.Engine

// EngineOptions selects the relation data structure and worker count.
type EngineOptions = datalog.Options

// EngineStats mirrors the evaluation statistics of the paper's Table 2.
type EngineStats = datalog.Stats

// ParseProgram parses Datalog source text.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(src string) *Program { return datalog.MustParse(src) }

// NewEngine compiles a program for evaluation.
func NewEngine(prog *Program, opts EngineOptions) (*Engine, error) {
	return datalog.New(prog, opts)
}

// Provider constructs relation representations; pass one in EngineOptions
// to swap the data structure under the engine (the paper's §4.3 setup).
type Provider = relation.Provider

// LookupProvider returns the relation provider registered under name
// (e.g. "btree", "btree-nh", "rbtset", "hashset", "gbtree", "tbbhash").
func LookupProvider(name string) (Provider, error) { return relation.Lookup(name) }

// ProviderNames lists all registered relation providers.
func ProviderNames() []string { return relation.Names() }

// Stats is one merged reading of every global observability counter and
// histogram — seqlock validations and failures, lease upgrades, write
// spins, tree descents and restarts, hint hits and misses per operation
// class, node splits, semi-naïve engine progress, and the log2-bucketed
// latency histograms. Its JSON form is the documented metrics contract
// (schema MetricsSchemaVersion, counter and histogram tables in
// DESIGN.md §9): names are append-only stable, and consumers must
// ignore unknown keys.
type Stats = obs.Snapshot

// HistogramStats is one merged reading of a single log2-bucketed
// histogram inside Stats: sample count, exact sum, and per-bucket
// counts (bucket 0 holds zero values, bucket i values in
// [2^(i-1), 2^i)).
type HistogramStats = obs.HistogramSnapshot

// ContentionEvent is one sampled lock-contention event captured by the
// flight recorder: the contention site, the tree level above the leaf,
// the spin iterations, and the wall-clock wait in nanoseconds.
type ContentionEvent = obs.FlightEvent

// TreeShape describes the physical structure of a BTree — depth, node
// count, and fill factor per level — as reported by BTree.Shape, whose
// walker is safe to run against live writers.
type TreeShape = core.Shape

// TreeLevelShape is one level of a TreeShape.
type TreeLevelShape = core.LevelShape

// EngineMetrics is the engine-level structured metrics document (per-run
// aggregate statistics, per-round semi-naïve progress, per-rule timings),
// returned by Engine.Metrics after Run.
type EngineMetrics = datalog.Metrics

// MetricsSchemaVersion identifies the JSON metrics contract emitted by
// Snapshot and by the commands' -metrics flag.
const MetricsSchemaVersion = obs.SchemaVersion

// MetricsEnabled reports whether the observability counters are compiled
// into this binary. It is a build-time constant: true by default, false
// under the "obsoff" build tag, in which case instrumentation costs
// nothing and every counter reads zero.
const MetricsEnabled = obs.Enabled

// Snapshot returns a merged reading of all observability counters. Hot
// paths batch counter updates per goroutine, so a snapshot taken while
// operations are in flight may trail the truth slightly; snapshots taken
// after Engine.Run, or after Hints.FlushObs for hand-rolled workers, are
// exact.
func Snapshot() Stats { return obs.Take() }

// ResetStats zeroes every observability counter, delimiting a measurement
// window. Do not call it concurrently with operations you intend to
// count.
func ResetStats() { obs.Reset() }

// PublishExpvar registers the counter registry with package expvar under
// the name "specbtree", so any HTTP server serving the /debug/vars
// endpoint exposes a live Stats snapshot. Safe to call more than once.
func PublishExpvar() { obs.Publish() }

// FlightRecorder returns the sampled lock-contention events currently
// held in the flight recorder's rings, oldest first. The recorder keeps
// a fixed number of recent events per shard; use it to see where and
// how long writers waited without paying for a full trace.
func FlightRecorder() []ContentionEvent { return obs.FlightEvents() }

// ResetFlightRecorder discards all recorded contention events,
// delimiting a measurement window. Like ResetStats, do not call it
// concurrently with operations you intend to observe.
func ResetFlightRecorder() { obs.ResetFlight() }

// NewDebugHandler returns the live debug HTTP handler: /metrics in
// Prometheus text exposition (?format=json for the
// MetricsSchemaVersion JSON document), /debug/histograms,
// /debug/flightrecorder, /debug/treeshape (fed by the shapes callback,
// which may be nil), /debug/vars, and /debug/pprof. The commands mount
// the same handler behind their -serve flag.
func NewDebugHandler(shapes func() map[string]TreeShape) http.Handler {
	return obshttp.Handler(obshttp.Options{Shapes: shapes})
}
