# Gnuplot script for the CSV output of the benchmark executables.
#
# Usage:
#   go run ./cmd/benchseq -csv > seq.csv   # strip the '#' header blocks
#   gnuplot -e "csv='fig3a.csv'; out='fig3a.png'; ylab='M inserts/s'" scripts/plot.gp
#
# The CSV format is: a header row "x,series1,series2,...", then one row per
# x value (see internal/bench.Table.RenderCSV).

if (!exists("csv"))  csv  = "figure.csv"
if (!exists("out"))  out  = "figure.png"
if (!exists("ylab")) ylab = "throughput"

set terminal pngcairo size 900,600 enhanced font "sans,11"
set output out
set datafile separator ","
set key outside right top
set grid ytics
set xlabel "x"
set ylabel ylab
set style data linespoints

# Count series from the header row.
stats csv using 1 every ::0::0 nooutput
ncols = int(system(sprintf("head -1 %s | tr ',' '\\n' | wc -l", csv)))

plot for [i=2:ncols] csv using 1:i with linespoints title columnheader(i)
