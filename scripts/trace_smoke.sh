#!/bin/sh
# trace-smoke: end-to-end exercise of the evaluation tracer (DESIGN.md
# §13). Starts servebtree with sampling armed and the debug server
# mounted, drives it with a sampled loadgen run, fetches /debug/trace,
# and validates the document with scripts/checktrace: well-formed
# Chrome trace_event JSON, every event a registered span site with
# nonzero trace/span IDs, and at least one event retained. A datalog
# -trace run against a small program validates the file-dump path the
# same way.
set -eu
GO=${GO:-go}
addr=${TRACE_SMOKE_ADDR:-localhost:40871}
debug=${TRACE_SMOKE_DEBUG:-localhost:40872}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
	if [ -n "$srv_pid" ]; then
		kill "$srv_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen
$GO build -o "$tmp/datalog" ./cmd/datalog
$GO build -o "$tmp/checktrace" ./scripts/checktrace

"$tmp/servebtree" -addr "$addr" -serve "$debug" -trace-sample 1 \
	2>"$tmp/server.log" &
srv_pid=$!

# A tiny read-only run doubles as the readiness probe.
i=0
until "$tmp/loadgen" -addr "$addr" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "trace-smoke: server never became reachable at $addr" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

"$tmp/loadgen" -addr "$addr" -clients 2 -requests 100 -writes 25 \
	-batch 8 -space 4096 -seed 7 -trace-sample 4 >/dev/null

"$tmp/checktrace" "http://$debug/debug/trace"

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=

# The file-dump path: force-trace a small evaluation and validate the
# written document the same way.
cat >"$tmp/tc.dl" <<'EOF'
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
EOF
printf '1\t2\n2\t3\n3\t4\n4\t5\n' >"$tmp/edge.facts"
"$tmp/datalog" -facts "$tmp" -out "$tmp/out" -trace "$tmp/trace.json" \
	"$tmp/tc.dl" >/dev/null
"$tmp/checktrace" "$tmp/trace.json"

echo "trace-smoke: ok"
