#!/bin/sh
# Regenerates every figure and table of the paper's evaluation and stores
# the raw outputs under results/. Sizes match EXPERIMENTS.md; pass larger
# -sizes/-n/-threads by editing below to reproduce the paper's full-scale
# sweeps on a bigger machine.
set -eu

cd "$(dirname "$0")/.."
mkdir -p results

echo "== Figure 3 (sequential micro-benchmarks) =="
go run ./cmd/benchseq -sizes 62500,250000,1000000 -reps 3 | tee results/figure3.txt

echo "== Figure 4 (parallel insertion) =="
go run ./cmd/benchpar -n 1000000 -threads 1,2,4,8 -reps 3 | tee results/figure4.txt

echo "== Figure 5 + Table 2 (Datalog engine) =="
go run ./cmd/benchdatalog -size 384 -threads 1,2,4 -stats | tee results/figure5.txt

echo "== Table 3 (concurrent trees) =="
go run ./cmd/benchtrees -n 1000000 -threads 1,2,4,8 -reps 3 | tee results/table3.txt

echo "== testing.B benchmarks (incl. ablations) =="
go test -bench=. -benchmem . | tee results/gobench.txt

echo "All results under results/"
