#!/bin/sh
# serve-smoke: end-to-end exercise of the network serving subsystem
# (DESIGN.md §11). Starts servebtree on a loopback port, waits for the
# listener, drives it with loadgen — whose determinism gate fails the
# run on any divergence between the final relation contents and the
# seed-derived expectation — then SIGTERMs the server and checks that
# the graceful drain ran.
set -eu
GO=${GO:-go}
addr=${SERVE_SMOKE_ADDR:-localhost:40870}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
	if [ -n "$srv_pid" ]; then
		kill "$srv_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/servebtree" -addr "$addr" 2>"$tmp/server.log" &
srv_pid=$!

# A tiny read-only run doubles as the readiness probe.
i=0
until "$tmp/loadgen" -addr "$addr" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "serve-smoke: server never became reachable at $addr" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

"$tmp/loadgen" -addr "$addr" -clients 4 -requests 200 -writes 25 \
	-batch 8 -space 4096 -seed 7 >/dev/null

kill -TERM "$srv_pid"
status=0
wait "$srv_pid" || status=$?
srv_pid=
# cmdutil exits 128+signo after running the drain cleanup: 143 = SIGTERM.
if [ "$status" -ne 143 ]; then
	echo "serve-smoke: server exited with status $status, want 143 (SIGTERM after drain)" >&2
	cat "$tmp/server.log" >&2
	exit 1
fi
if ! grep -q "shutdown: drained" "$tmp/server.log"; then
	echo "serve-smoke: server log missing the graceful-drain summary" >&2
	cat "$tmp/server.log" >&2
	exit 1
fi
echo "serve-smoke: ok"
