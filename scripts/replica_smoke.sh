#!/bin/sh
# replica-smoke: end-to-end exercise of follower replication and
# promote-on-failure (DESIGN.md §16). Starts a leader shard with a
# durable log and two servebtree -follower-of read replicas, drives a
# checksummed loadgen run with reads offloaded to the followers under a
# staleness bound, kill -9s the leader, promotes one follower by SIGHUP
# (it replays the dead leader's committed log tail first), and
# re-verifies the exact contents checksum against the promoted leader:
# every acknowledged insert must survive the failover, and the promoted
# leader must take new writes.
set -eu
GO=${GO:-go}
base=${REPLICA_SMOKE_PORT:-40900}
lead="localhost:$base"
f1="localhost:$((base + 1))"
f2="localhost:$((base + 2))"
tmp=$(mktemp -d)
pl=
p1=
p2=
cleanup() {
	for p in "$pl" "$p1" "$p2"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

wait_ready() { # $1 = address
	i=0
	until "$tmp/loadgen" -addr "$1" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "replica-smoke: server never became reachable at $1" >&2
			cat "$tmp"/*.err >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$tmp/servebtree" -addr "$lead" -shard-id 0 -log "$tmp/leader.log" \
	2>"$tmp/leader.err" &
pl=$!
wait_ready "$lead"

# Two streaming read replicas, each with its own durable log. Both get
# -leader-log so either can be promoted with full catch-up.
"$tmp/servebtree" -addr "$f1" -shard-id 0 -follower-of "$lead" \
	-log "$tmp/f1.log" -leader-log "$tmp/leader.log" 2>"$tmp/f1.err" &
p1=$!
"$tmp/servebtree" -addr "$f2" -shard-id 0 -follower-of "$lead" \
	-log "$tmp/f2.log" -leader-log "$tmp/leader.log" 2>"$tmp/f2.err" &
p2=$!
wait_ready "$f1"
wait_ready "$f2"

# Checksummed run with follower offload: reads go to a replica whose
# stamp is within the staleness bound, writes to the leader; the
# determinism gate verifies the leader's acknowledged contents.
"$tmp/loadgen" -addrs "$lead" -followers "$f1,$f2" -max-stale 8 \
	-clients 4 -requests 150 -writes 25 -batch 8 -space 4096 -seed 17 \
	-json >"$tmp/run.json"
checksum=$(sed -n 's/.*"checksum": "\([0-9a-f]*\)".*/\1/p' "$tmp/run.json")
if [ -z "$checksum" ]; then
	echo "replica-smoke: no checksum in the run document" >&2
	cat "$tmp/run.json" >&2
	exit 1
fi
if ! grep -q '"follower_reads": [1-9]' "$tmp/run.json"; then
	echo "replica-smoke: no read was ever offloaded to a follower" >&2
	cat "$tmp/run.json" >&2
	exit 1
fi

# Kill the leader abruptly — no drain, connections dropped, followers
# mid-stream — and promote follower 1 by SIGHUP: it replays the dead
# leader's committed log tail past its own watermark, then turns
# writable on its own address.
kill -9 "$pl"
wait "$pl" 2>/dev/null || true
pl=
kill -HUP "$p1"
i=0
until grep -q "^promoted:" "$tmp/f1.err"; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "replica-smoke: follower never promoted" >&2
		cat "$tmp/f1.err" >&2
		exit 1
	fi
	sleep 0.1
done

# The promoted leader must hold exactly the acknowledged contents...
"$tmp/loadgen" -addrs "$f1" -space 4096 -verify "$checksum" >/dev/null

# ...and take new writes (the gate inside this run verifies them).
"$tmp/loadgen" -addrs "$f1" -clients 2 -requests 40 -writes 50 \
	-batch 8 -space 4096 -seed 18 >/dev/null

echo "replica-smoke: ok"
