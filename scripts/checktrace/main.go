// Command checktrace validates a Chrome trace_event document produced
// by the span tracer (obs.WriteChromeTrace — the /debug/trace endpoint
// or a `datalog -trace` dump; DESIGN.md §13). The document must be a
// JSON object with a traceEvents array, and every event must be a
// complete ("X") event whose name is a registered span site and whose
// args carry a nonzero trace and span ID. The input argument is a file
// path or an http(s):// URL; with a URL the endpoint must also answer
// 200 with an application/json content type.
//
// With -min N the document must hold at least N events (default 1 —
// a smoke run that traced nothing is a failure; -min 0 accepts the
// empty-but-well-formed obsoff shape). It exits non-zero listing each
// violation, or prints a one-line summary on success.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"specbtree/internal/obs"
)

// traceDoc mirrors the obs.WriteChromeTrace output shape.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// traceEvent is one Chrome trace_event entry with the tracer's args.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Trace uint64 `json:"trace"`
		Span  uint64 `json:"span"`
	} `json:"args"`
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", a...)
	os.Exit(1)
}

func main() {
	min := flag.Int("min", 1, "minimum number of trace events required (0 accepts the empty obsoff document)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checktrace [-min N] FILE|URL")
		os.Exit(2)
	}
	src := flag.Arg(0)

	var raw []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		res, err := http.Get(src)
		if err != nil {
			fatal("fetch %s: %v", src, err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			fatal("fetch %s: status %d", src, res.StatusCode)
		}
		if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			fatal("fetch %s: content type %q, want application/json", src, ct)
		}
		raw, err = io.ReadAll(res.Body)
		if err != nil {
			fatal("fetch %s: %v", src, err)
		}
	} else {
		var err error
		raw, err = os.ReadFile(src)
		if err != nil {
			fatal("%v", err)
		}
	}

	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal("%s: not a valid trace_event document: %v", src, err)
	}
	if len(doc.TraceEvents) < *min {
		fatal("%s: %d trace events, want at least %d", src, len(doc.TraceEvents), *min)
	}

	sites := map[string]bool{}
	for _, name := range obs.SpanSiteNames() {
		sites[name] = true
	}
	var problems []string
	traces := map[uint64]bool{}
	seenSites := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if !sites[ev.Name] {
			problems = append(problems, fmt.Sprintf("event %d: name %q is not a registered span site", i, ev.Name))
		}
		if ev.Ph != "X" {
			problems = append(problems, fmt.Sprintf("event %d (%s): ph %q, want complete event \"X\"", i, ev.Name, ev.Ph))
		}
		if ev.Args.Trace == 0 || ev.Args.Span == 0 {
			problems = append(problems, fmt.Sprintf("event %d (%s): zero trace/span ID in args", i, ev.Name))
		}
		traces[ev.Args.Trace] = true
		seenSites[ev.Name]++
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "checktrace:", p)
		}
		os.Exit(1)
	}

	names := make([]string, 0, len(seenSites))
	for name := range seenSites {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s×%d", name, seenSites[name])
	}
	fmt.Printf("checktrace: %d events across %d trace(s): %s\n",
		len(doc.TraceEvents), len(traces), strings.Join(parts, " "))
}
