#!/bin/sh
# Regenerates BENCH_cluster.json (written to stdout): the pinned
# sharded-cluster run of `make bench-json`, in the stable
# specbtree.bench.cluster.v1 schema. Three servebtree shards, each with
# a durable per-epoch insert log (every acknowledged insert is fsynced
# before its ack — the measured write path includes durability), driven
# by loadgen's cluster mode: inserts and point reads routed to the
# owning shard, scans fanned out and merged (DESIGN.md §15).
#
# Throughput and latency figures only mean something relative to the
# recorded cpus/gomaxprocs fields — see EXPERIMENTS.md. On the 1-CPU CI
# host all three shards timeslice one core; the numbers are honest
# about that, not a parallel-speedup claim.
set -eu
GO=${GO:-go}
base=${BENCH_CLUSTER_PORT:-40890}
a0="localhost:$base"
a1="localhost:$((base + 1))"
a2="localhost:$((base + 2))"
tmp=$(mktemp -d)
p0=
p1=
p2=
cleanup() {
	for p in "$p0" "$p1" "$p2"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/servebtree" -addr "$a0" -shard-id 0 -log "$tmp/shard-0.log" 2>"$tmp/shard-0.err" &
p0=$!
"$tmp/servebtree" -addr "$a1" -shard-id 1 -log "$tmp/shard-1.log" 2>"$tmp/shard-1.err" &
p1=$!
"$tmp/servebtree" -addr "$a2" -shard-id 2 -log "$tmp/shard-2.log" 2>"$tmp/shard-2.err" &
p2=$!

for a in "$a0" "$a1" "$a2"; do
	i=0
	until "$tmp/loadgen" -addr "$a" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "bench_cluster_json: shard never became reachable at $a" >&2
			cat "$tmp"/shard-*.err >&2
			exit 1
		fi
		sleep 0.1
	done
done

"$tmp/loadgen" -addrs "$a0,$a1,$a2" -clients 8 -requests 1000 -writes 20 \
	-batch 16 -space 65536 -seed 1 -json
