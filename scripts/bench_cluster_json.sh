#!/bin/sh
# Regenerates BENCH_cluster.json (written to stdout): the pinned
# sharded-cluster run of `make bench-json`, in the stable
# specbtree.bench.cluster.v1 schema. Three servebtree shards, each with
# a durable per-epoch insert log (every acknowledged insert is fsynced
# before its ack — the measured write path includes durability), driven
# by loadgen's cluster mode: inserts and point reads routed to the
# owning shard, scans fanned out and merged (DESIGN.md §15).
#
# The document's appended "follower_reads" cell compares the same
# read-heavy workload against a single-shard leader with reads served
# by the leader alone versus offloaded to one streaming follower under
# a staleness bound (DESIGN.md §16); the offload sub-document carries
# the follower/fallback read split and the replication-lag digest
# sampled during the run.
#
# Throughput and latency figures only mean something relative to the
# recorded cpus/gomaxprocs fields — see EXPERIMENTS.md. On the 1-CPU CI
# host all shards, followers and clients timeslice one core; the
# numbers are honest about that, not a parallel-speedup claim.
set -eu
GO=${GO:-go}
base=${BENCH_CLUSTER_PORT:-40890}
a0="localhost:$base"
a1="localhost:$((base + 1))"
a2="localhost:$((base + 2))"
lead="localhost:$((base + 3))"
foll="localhost:$((base + 4))"
tmp=$(mktemp -d)
p0=
p1=
p2=
pl=
pf=
cleanup() {
	for p in "$p0" "$p1" "$p2" "$pl" "$pf"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

wait_ready() { # $1 = address
	i=0
	until "$tmp/loadgen" -addr "$1" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "bench_cluster_json: server never became reachable at $1" >&2
			cat "$tmp"/*.err >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$tmp/servebtree" -addr "$a0" -shard-id 0 -log "$tmp/shard-0.log" 2>"$tmp/shard-0.err" &
p0=$!
"$tmp/servebtree" -addr "$a1" -shard-id 1 -log "$tmp/shard-1.log" 2>"$tmp/shard-1.err" &
p1=$!
"$tmp/servebtree" -addr "$a2" -shard-id 2 -log "$tmp/shard-2.log" 2>"$tmp/shard-2.err" &
p2=$!
wait_ready "$a0"
wait_ready "$a1"
wait_ready "$a2"

"$tmp/loadgen" -addrs "$a0,$a1,$a2" -clients 8 -requests 1000 -writes 20 \
	-batch 16 -space 65536 -seed 1 -json >"$tmp/main.json"

# Follower-reads cell: one leader, one streaming follower, the same
# read-heavy workload with and without follower offload. The writes in
# the mix keep the replication stream moving, so the lag digest
# measures a live stream, not an idle caught-up replica.
"$tmp/servebtree" -addr "$lead" -shard-id 0 -log "$tmp/lead.log" 2>"$tmp/lead.err" &
pl=$!
wait_ready "$lead"
"$tmp/servebtree" -addr "$foll" -shard-id 0 -follower-of "$lead" \
	-log "$tmp/foll.log" 2>"$tmp/foll.err" &
pf=$!
wait_ready "$foll"

"$tmp/loadgen" -addrs "$lead" -clients 4 -requests 800 -writes 10 \
	-batch 16 -space 65536 -seed 2 -json >"$tmp/leader_only.json"
"$tmp/loadgen" -addrs "$lead" -followers "$foll" -max-stale 4 \
	-clients 4 -requests 800 -writes 10 \
	-batch 16 -space 65536 -seed 3 -json >"$tmp/offload.json"

# Compose: the v1 document plus the appended follower_reads cell, each
# sub-document a full loadgen run document.
sed '$d' "$tmp/main.json" | sed '$s/$/,/'
printf '  "follower_reads": {\n    "leader_only":\n'
sed 's/^/    /' "$tmp/leader_only.json" | sed '$s/$/,/'
printf '    "follower_offload":\n'
sed 's/^/    /' "$tmp/offload.json"
printf '  }\n}\n'
