// Command checkdocs enforces the documentation contract of the public
// surface and the observability layer (run via scripts/check_docs.sh or
// `make check-docs`):
//
//  1. every exported top-level identifier in the root package and in
//     internal/obs must carry a doc comment, and
//  2. every counter name of the metrics contract (obs.Names) must appear
//     in DESIGN.md, so the §9 counter table cannot drift from the code.
//
// It exits non-zero listing each violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"specbtree/internal/obs"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	for _, dir := range []string{root, filepath.Join(root, "internal", "obs")} {
		missing, err := undocumentedExports(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdocs:", err)
			os.Exit(1)
		}
		problems = append(problems, missing...)
	}

	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	for _, name := range obs.Names() {
		if !strings.Contains(string(design), name) {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: counter %q missing from the §9 table", name))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "checkdocs:", p)
		}
		os.Exit(1)
	}
}

// undocumentedExports parses the non-test Go files of dir and returns one
// message per exported top-level identifier lacking a doc comment.
func undocumentedExports(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							// Only methods on exported receivers form the
							// public surface.
							if !exportedRecv(d.Recv) {
								continue
							}
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "const/var", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(fl *ast.FieldList) bool {
	if fl == nil || len(fl.List) == 0 {
		return false
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
