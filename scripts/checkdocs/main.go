// Command checkdocs enforces the documentation contract of the public
// surface and the observability layer (run via scripts/check_docs.sh or
// `make check-docs`):
//
//  1. every exported top-level identifier in the root package, in
//     internal/obs and in internal/obshttp must carry a doc comment,
//  2. every counter, histogram and contention-site name of the metrics
//     contract must appear in DESIGN.md, so the §9 tables cannot drift
//     from the code,
//  3. the frozen counter and histogram names (v1, the serving
//     subsystem's, the streaming query-execution set, and the
//     epoch-snapshot set) are still
//     registered — the contract is append-only, so renaming or deleting
//     a published name is an error — and
//  4. DESIGN.md names the current schema version, the flight-recorder
//     JSON field names, and the §12 evaluation strategies.
//
// It exits non-zero listing each violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"specbtree/internal/obs"
)

// frozenV1Counters is the complete counter list of the
// specbtree.metrics.v1 schema, frozen at the moment v2 shipped. The
// contract is append-only: every name below must stay registered in
// obs.Names() forever. Extend this list only when freezing a new schema
// version.
var frozenV1Counters = []string{
	"core.descents",
	"core.restarts",
	"core.split.inner",
	"core.split.leaf",
	"core.split.root",
	"datalog.delta_tuples",
	"datalog.rounds",
	"datalog.rule_evals",
	"hint.find.hits",
	"hint.find.misses",
	"hint.insert.hits",
	"hint.insert.misses",
	"hint.lower.hits",
	"hint.lower.misses",
	"hint.upper.hits",
	"hint.upper.misses",
	"optlock.read.validation_failures",
	"optlock.read.validations",
	"optlock.upgrade.failures",
	"optlock.upgrade.successes",
	"optlock.write.spins",
}

// frozenServeCounters and frozenServeHistograms freeze the serving
// subsystem's names at the moment the subsystem shipped (DESIGN.md §11).
// Same append-only contract as the v1 list: every name must stay
// registered forever.
var frozenServeCounters = []string{
	"serve.read.ops",
	"serve.write.ops",
	"serve.write.batches",
	"serve.epochs",
	"serve.retries",
	"serve.conns.accepted",
	"serve.conns.dropped",
	"serve.phase.violations",
}

var frozenServeHistograms = []string{
	"hist.serve.read.ns",
	"hist.serve.write_batch.ns",
	"hist.serve.epoch.ns",
	"hist.serve.queue.depth",
}

// frozenQueryCounters and frozenQueryHistograms freeze the streaming
// query-execution names at the moment the iterator evaluator and plan
// cache shipped (specbtree.metrics.v3, DESIGN.md §12). Same append-only
// contract: every name must stay registered forever.
var frozenQueryCounters = []string{
	"datalog.plan.cache_hits",
	"datalog.plan.cache_misses",
	"datalog.plan.cache_invalidations",
	"datalog.iter.scans",
	"datalog.iter.rows",
	"datalog.iter.pushdown_scans",
	"datalog.iter.residual_rows",
}

var frozenQueryHistograms = []string{
	"hist.datalog.pushdown.selectivity",
}

// frozenSnapshotCounters and frozenSnapshotHistograms freeze the
// epoch-snapshot names at the moment snapshot reads shipped
// (specbtree.metrics.v4, DESIGN.md §14). Same append-only contract:
// every name must stay registered forever.
var frozenSnapshotCounters = []string{
	"core.cow.clones",
	"serve.snapshot.reads",
}

var frozenSnapshotHistograms = []string{
	"hist.serve.gate.bypass.ns",
}

// frozenClusterCounters and frozenClusterHistograms freeze the sharded
// cluster names at the moment the cluster subsystem shipped
// (specbtree.metrics.v5, DESIGN.md §15). Same append-only contract:
// every name must stay registered forever.
var frozenClusterCounters = []string{
	"cluster.log.records",
	"cluster.log.bytes",
	"cluster.log.replay.tuples",
	"cluster.log.torn_tails",
	"cluster.rebalance.moves",
	"cluster.rebalance.tuples",
	"cluster.rebalance.aborts",
	"cluster.rebalance.fence_failures",
	"cluster.scan.fanouts",
	"cluster.scan.dupes",
	"cluster.scan.restarts",
}

var frozenClusterHistograms = []string{
	"hist.cluster.log.flush.ns",
}

// frozenReplicaCounters and frozenReplicaHistograms freeze the
// follower replication names at the moment streaming read replicas
// shipped (specbtree.metrics.v6, DESIGN.md §16). Same append-only
// contract: every name must stay registered forever.
var frozenReplicaCounters = []string{
	"replica.stream.epochs",
	"replica.apply.epochs",
	"replica.apply.tuples",
	"replica.bootstrap.tuples",
	"replica.fences.applied",
	"replica.reads.follower",
	"replica.reads.fallback",
	"replica.promotions",
}

var frozenReplicaHistograms = []string{
	"hist.replica.lag.epochs",
}

// strategyNames are the evaluation-strategy spellings accepted by the
// engine's -strategy flags; DESIGN.md §12 must name each so the docs
// cannot drift from the dispatch.
var strategyNames = []string{
	"stream", "stream-nopush", "materialize",
}

// frozenSpanSites freezes the trace span site names at the moment the
// tracing subsystem shipped (DESIGN.md §13), in registry order. Span
// names travel in persisted trace_event dumps, so the contract is
// append-only: every name must stay registered, in this order, forever.
var frozenSpanSites = []string{
	"client.request",
	"serve.frame.read",
	"serve.frame.insert",
	"serve.phase.wait",
	"serve.epoch",
	"engine.round",
	"engine.rule",
	"iter.scan",
	"iter.scan.push",
}

// spanFields are the JSON field names carried by each span in the
// Spans() dump and the trace_event args; DESIGN.md must document each,
// backticked, in its §13 span-schema section.
var spanFields = []string{
	"trace", "span", "parent", "site", "start_ns", "dur_ns", "arg0", "arg1",
}

// flightRecorderFields are the JSON field names of the flight-recorder
// dump (obs.FlightEvent plus the envelope's sample_rate); DESIGN.md must
// document each, backticked, in its §9 flight-recorder section.
var flightRecorderFields = []string{
	"seq", "site", "level", "spins", "wait_ns", "sample_rate",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	for _, dir := range []string{
		root,
		filepath.Join(root, "internal", "obs"),
		filepath.Join(root, "internal", "obshttp"),
	} {
		missing, err := undocumentedExports(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdocs:", err)
			os.Exit(1)
		}
		problems = append(problems, missing...)
	}

	registered := map[string]bool{}
	for _, name := range obs.Names() {
		registered[name] = true
	}
	for _, name := range frozenV1Counters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: v1 counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenServeCounters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: serve counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenQueryCounters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: query counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenSnapshotCounters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: snapshot counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenClusterCounters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: cluster counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenReplicaCounters {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("obs: replica counter %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	registeredHist := map[string]bool{}
	for _, name := range obs.HistogramNames() {
		registeredHist[name] = true
	}
	for _, name := range frozenServeHistograms {
		if !registeredHist[name] {
			problems = append(problems,
				fmt.Sprintf("obs: serve histogram %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenQueryHistograms {
		if !registeredHist[name] {
			problems = append(problems,
				fmt.Sprintf("obs: query histogram %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenSnapshotHistograms {
		if !registeredHist[name] {
			problems = append(problems,
				fmt.Sprintf("obs: snapshot histogram %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenClusterHistograms {
		if !registeredHist[name] {
			problems = append(problems,
				fmt.Sprintf("obs: cluster histogram %q no longer registered (the metrics contract is append-only)", name))
		}
	}
	for _, name := range frozenReplicaHistograms {
		if !registeredHist[name] {
			problems = append(problems,
				fmt.Sprintf("obs: replica histogram %q no longer registered (the metrics contract is append-only)", name))
		}
	}

	raw, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	design := string(raw)
	for _, name := range obs.Names() {
		if !strings.Contains(design, name) {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: counter %q missing from the §9 table", name))
		}
	}
	for _, name := range obs.HistogramNames() {
		if !strings.Contains(design, name) {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: histogram %q missing from the §9 table", name))
		}
	}
	for _, name := range obs.ContentionSiteNames() {
		if !strings.Contains(design, name) {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: contention site %q missing from §9", name))
		}
	}
	for _, field := range flightRecorderFields {
		if !strings.Contains(design, "`"+field+"`") {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: flight-recorder JSON field `%s` not documented in §9", field))
		}
	}
	if !strings.Contains(design, obs.SchemaVersion) {
		problems = append(problems,
			fmt.Sprintf("DESIGN.md: schema version %q not documented in §9", obs.SchemaVersion))
	}
	if !strings.Contains(design, "## 12.") {
		problems = append(problems,
			"DESIGN.md: §12 (streaming query execution) is missing")
	}
	for _, name := range strategyNames {
		if !strings.Contains(design, "`"+name+"`") {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: evaluation strategy `%s` not documented in §12", name))
		}
	}

	// Span-site freeze: the registry must carry exactly the frozen names
	// as a prefix, in order — appended sites are fine, renames and
	// removals are not.
	sites := obs.SpanSiteNames()
	if len(sites) < len(frozenSpanSites) {
		problems = append(problems, fmt.Sprintf(
			"obs: span-site registry has %d sites, frozen contract has %d (span names are append-only)",
			len(sites), len(frozenSpanSites)))
	}
	for i, want := range frozenSpanSites {
		if i >= len(sites) {
			break
		}
		if sites[i] != want {
			problems = append(problems, fmt.Sprintf(
				"obs: span site %d is %q, frozen contract says %q (span names are append-only, in registry order)",
				i, sites[i], want))
		}
	}
	for _, name := range sites {
		if !strings.Contains(design, name) {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: span site %q missing from the §13 table", name))
		}
	}
	for _, field := range spanFields {
		if !strings.Contains(design, "`"+field+"`") {
			problems = append(problems,
				fmt.Sprintf("DESIGN.md: span JSON field `%s` not documented in §13", field))
		}
	}
	if !strings.Contains(design, "## 13.") {
		problems = append(problems,
			"DESIGN.md: §13 (evaluation tracing) is missing")
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "checkdocs:", p)
		}
		os.Exit(1)
	}
}

// undocumentedExports parses the non-test Go files of dir and returns one
// message per exported top-level identifier lacking a doc comment.
func undocumentedExports(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							// Only methods on exported receivers form the
							// public surface.
							if !exportedRecv(d.Recv) {
								continue
							}
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "const/var", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(fl *ast.FieldList) bool {
	if fl == nil || len(fl.List) == 0 {
		return false
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
