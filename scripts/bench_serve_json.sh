#!/bin/sh
# Regenerates BENCH_serve.json (written to stdout): the pinned
# serving-layer runs of `make bench-json`, in the stable
# specbtree.bench.serve.v2 schema — an envelope of per-cell
# specbtree.bench.serve.v1 documents:
#
#   default      the original mixed cell (20% writes, snapshot reads on)
#   write_heavy  the gate-bypass comparison. The mix is bulk-delta: 10%
#                of requests are inserts but each carries a 4096-tuple
#                batch, so applied operations are >99% writes and the
#                scheduler spends most of its time inside write epochs —
#                the datalog shape (large deltas between read probes).
#                A bounded key space keeps copy-on-write warmup-only.
#     gate_blocking   servebtree -no-snapshot-reads (the blocking gate)
#     snapshot_reads  the default server (reads bypass to the snapshot)
#
# The write_heavy cells are run three times each and the run with the
# median read p99 is pinned: the comparison is a tail-latency claim, and
# on a shared host single tails flip on noise about one run in four.
#
# The write_heavy cells run the server with GOMAXPROCS=2 even on a
# one-CPU host: at GOMAXPROCS=1 the epoch goroutine is never preempted
# inside a sub-10ms epoch, so no read ever arrives while the gate is
# closed and both cells degenerate to the same ungated measurement. Two
# scheduler threads timeslice on the kernel, which makes gated arrivals
# — the thing the two cells differ on — actually happen.
#
# Throughput and latency figures only mean something relative to the
# recorded cpus/gomaxprocs fields — see EXPERIMENTS.md ("Worked example:
# the serving layer under load").
set -eu
GO=${GO:-go}
addr=${BENCH_SERVE_ADDR:-localhost:40871}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
	if [ -n "$srv_pid" ]; then
		kill "$srv_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

# run_cell SERVER_FLAGS LOADGEN_FLAGS OUT [SERVER_ENV]: one loadgen
# document against a fresh server. The server must exit 143 (clean
# SIGTERM drain).
run_cell() {
	env ${4:-} "$tmp/servebtree" -addr "$addr" $1 2>"$tmp/server.log" &
	srv_pid=$!
	i=0
	until "$tmp/loadgen" -addr "$addr" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "bench_serve_json: server never became reachable at $addr" >&2
			cat "$tmp/server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	"$tmp/loadgen" -addr "$addr" $2 -seed 1 -json >"$3"
	kill -TERM "$srv_pid"
	status=0
	wait "$srv_pid" || status=$?
	srv_pid=
	if [ "$status" -ne 143 ]; then
		echo "bench_serve_json: server exited with status $status, want 143" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
}

# read_p99 FILE: the read-latency p99 of a loadgen document (the first
# p99_ns in the doc — read_latency precedes insert_latency).
read_p99() {
	grep -m1 '"p99_ns"' "$1" | tr -dc 0-9
}

# run_cell_median3 SERVER_FLAGS LOADGEN_FLAGS OUT: run_cell three times,
# keep the run with the median read p99.
run_cell_median3() {
	for rep in 1 2 3; do
		run_cell "$1" "$2" "$3.$rep" "GOMAXPROCS=2"
	done
	mid=$( { for rep in 1 2 3; do
		printf '%020d %s\n' "$(read_p99 "$3.$rep")" "$rep"
	done; } | sort | sed -n 2p | cut -d' ' -f2)
	cp "$3.$mid" "$3"
}

mixed="-clients 8 -requests 2000 -writes 20 -batch 16"
heavy="-clients 8 -requests 1000 -writes 10 -batch 4096 -space 512"

run_cell "" "$mixed" "$tmp/default.json"
run_cell_median3 "-no-snapshot-reads" "$heavy" "$tmp/blocking.json"
run_cell_median3 "" "$heavy" "$tmp/snapshot.json"

printf '{\n"schema": "specbtree.bench.serve.v2",\n"default":\n'
cat "$tmp/default.json"
printf ',\n"write_heavy": {\n"gate_blocking":\n'
cat "$tmp/blocking.json"
printf ',\n"snapshot_reads":\n'
cat "$tmp/snapshot.json"
printf '}\n}\n'
