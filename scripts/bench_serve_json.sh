#!/bin/sh
# Regenerates BENCH_serve.json (written to stdout): the pinned
# serving-layer run of `make bench-json`, in the stable
# specbtree.bench.serve.v1 schema. Throughput and latency figures only
# mean something relative to the recorded cpus/gomaxprocs fields — see
# EXPERIMENTS.md ("Worked example: the serving layer under load").
set -eu
GO=${GO:-go}
addr=${BENCH_SERVE_ADDR:-localhost:40871}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
	if [ -n "$srv_pid" ]; then
		kill "$srv_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/servebtree" -addr "$addr" 2>"$tmp/server.log" &
srv_pid=$!

i=0
until "$tmp/loadgen" -addr "$addr" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "bench_serve_json: server never became reachable at $addr" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

"$tmp/loadgen" -addr "$addr" -clients 8 -requests 2000 -writes 20 \
	-batch 16 -seed 1 -json

kill -TERM "$srv_pid"
status=0
wait "$srv_pid" || status=$?
srv_pid=
if [ "$status" -ne 143 ]; then
	echo "bench_serve_json: server exited with status $status, want 143" >&2
	cat "$tmp/server.log" >&2
	exit 1
fi
