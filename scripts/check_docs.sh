#!/bin/sh
# check_docs.sh — fail if an exported symbol of the public surface (root
# package, internal/obs) lacks a doc comment, or if an observability
# counter is missing from DESIGN.md's §9 table. Thin wrapper around the
# go/ast checker in scripts/checkdocs; run from the repository root (or
# pass the root as $1).
set -e
cd "$(dirname "$0")/.."
exec go run ./scripts/checkdocs "${1:-.}"
