package main

import (
	"os"
	"path/filepath"
	"testing"
)

func lintSource(t *testing.T, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlagsLoadAfterValidate: the exact shape of the pre-PR 3 bug must
// be reported — count loaded lexically after a validation in the same
// statement list, whether the validation is a bare statement, an if
// condition, or the raw lock method.
func TestFlagsLoadAfterValidate(t *testing.T) {
	cases := map[string]string{
		"if-condition valid": `package p
func f() {
	if !valid(&cur.lock, lease, &oc) {
		return
	}
	cnt := int(cur.count.Load())
	_ = cnt
}`,
		"raw Valid method": `package p
func f() {
	if !cur.lock.Valid(lease) {
		return
	}
	cnt := int(cur.count.Load())
	_ = cnt
}`,
		"count load inside later header": `package p
func f() {
	ok := valid(&cur.lock, lease, &oc)
	if idx < int(cur.count.Load()) {
		_ = ok
	}
}`,
	}
	for name, src := range cases {
		if got := lintSource(t, src); len(got) != 1 {
			t.Errorf("%s: %d violations, want 1: %v", name, len(got), got)
		}
	}
}

// TestAcceptsLoadBeforeValidate: the fixed ordering — capture the count,
// then validate — must pass, as must a count load under a fresh lease.
func TestAcceptsLoadBeforeValidate(t *testing.T) {
	cases := map[string]string{
		"fixed ordering": `package p
func f() {
	cnt := int(cur.count.Load())
	if !valid(&cur.lock, lease, &oc) {
		return
	}
	_ = cnt
}`,
		"fresh lease clears taint": `package p
func f() {
	if !valid(&cur.lock, lease, &oc) {
		return
	}
	lease2 := next.lock.StartRead()
	cnt := int(next.count.Load())
	_, _ = lease2, cnt
}`,
		"nested block scanned independently": `package p
func f() {
	if !cur.inner {
		if !valid(&cur.lock, lease, &oc) {
			return
		}
		return
	}
	cnt := int(cur.count.Load())
	_ = cnt
}`,
	}
	for name, src := range cases {
		if got := lintSource(t, src); len(got) != 0 {
			t.Errorf("%s: unexpected violations: %v", name, got)
		}
	}
}

// TestIgnoreMarkerSkipsFile: the deliberately broken harness reference
// carries the marker and must not be linted.
func TestIgnoreMarkerSkipsFile(t *testing.T) {
	src := `package p
//checkorder:ignore-file
func f() {
	_ = valid(&cur.lock, lease, &oc)
	_ = cur.count.Load()
}`
	if got := lintSource(t, src); len(got) != 0 {
		t.Errorf("ignored file produced violations: %v", got)
	}
}

// TestFlagsRealRacyReference lints the preserved pre-fix descent
// (core racy_inject.go) with its ignore marker stripped: the lint must
// flag the reintroduced bug, proving it would have caught PR 3.
func TestFlagsRealRacyReference(t *testing.T) {
	raw, err := os.ReadFile("../../internal/core/racy_inject.go")
	if err != nil {
		t.Skipf("racy reference not readable: %v", err)
	}
	src := string(raw)
	const marker = "//checkorder:ignore-file"
	idx := -1
	for i := 0; i+len(marker) <= len(src); i++ {
		if src[i:i+len(marker)] == marker {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("racy_inject.go lost its ignore marker")
	}
	stripped := src[:idx] + "// (marker stripped for lint self-test)" + src[idx+len(marker):]
	got := lintSource(t, stripped)
	if len(got) == 0 {
		t.Fatal("lint missed the load-after-validate bug in the racy reference path")
	}
}
