// Command checkorder enforces the load-before-validate rule in the
// tree's optimistic read paths (the PR 3 lesson): any value a reader
// uses after a successful lease validation must have been loaded BEFORE
// the validation — otherwise a writer landing between the validation and
// the load silently breaks the read's consistency. The concrete instance
// this lint targets is the leaf count: descent code must never execute
//
//	if !valid(&n.lock, lease, &oc) { ... }
//	cnt := int(n.count.Load())        // RACE: count read after validate
//
// but always capture the count first and validate afterwards.
//
// The check is a per-statement-list lexical scan over the AST of every
// non-test Go file in the packages given as arguments:
//
//   - A statement whose HEADER (the statement minus any nested block
//     bodies — an if's init/condition, a for's clauses, an assignment's
//     right-hand side) calls the validation funnel (an identifier named
//     "valid" or a method named "Valid") taints the statements after it.
//   - A ".StartRead(" call in a header clears the taint: a fresh lease
//     opens a new read section, and loads that precede its validation
//     are exactly the sanctioned pattern.
//   - A ".count.Load(" call while tainted is a violation.
//
// Nested statement lists (block bodies, case bodies) are scanned
// independently, each starting untainted: a count load after an if-block
// that merely CONTAINS validations is fine — the load-after-validate
// hazard is a straight-line ordering problem within one list. This
// scoping is what keeps the fixed boundHintCounted clean while the
// pre-fix version (preserved as core.LowerBoundRacy in lockinject
// builds) is flagged.
//
// Files carrying a "//checkorder:ignore-file" comment are skipped; the
// only legitimate carrier is the deliberately broken reference path the
// correctness harness proves itself against.
//
// Usage: go run ./scripts/checkorder ./internal/core [more packages...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkorder <package-dir> [more...]")
		os.Exit(2)
	}
	var violations []string
	for _, dir := range os.Args[1:] {
		v, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkorder: %v\n", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "checkorder: %d load-after-validate violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		v, err := checkFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func checkFile(path string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.Contains(string(src), "//checkorder:ignore-file") {
		return nil, nil
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		// Scan every statement list found anywhere; ast.Inspect reaches
		// nested lists on its own, so scanList must not recurse.
		switch l := n.(type) {
		case *ast.BlockStmt:
			out = append(out, scanList(fset, l.List)...)
		case *ast.CaseClause:
			out = append(out, scanList(fset, l.Body)...)
		case *ast.CommClause:
			out = append(out, scanList(fset, l.Body)...)
		}
		return true
	})
	return out, nil
}

// scanList performs the lexical taint scan over one statement list.
func scanList(fset *token.FileSet, stmts []ast.Stmt) []string {
	var out []string
	tainted := false
	var taintPos token.Pos
	for _, s := range stmts {
		h := headerExprs(s)
		if tainted {
			if pos, ok := findCountLoad(h); ok {
				out = append(out, fmt.Sprintf("%s: count loaded after lease validation at %s",
					fset.Position(pos), fset.Position(taintPos)))
			}
		}
		if pos, ok := findCall(h, isStartRead); ok {
			tainted = false
			_ = pos
		}
		if pos, ok := findCall(h, isValidate); ok {
			tainted = true
			taintPos = pos
		}
	}
	return out
}

// headerExprs returns the expressions of a statement's header — the
// parts evaluated as straight-line code in the enclosing list, excluding
// any nested block bodies (those are scanned as their own lists).
func headerExprs(s ast.Stmt) []ast.Node {
	var h []ast.Node
	add := func(n ast.Node) {
		if n != nil && n != ast.Node(nil) {
			h = append(h, n)
		}
	}
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			add(st.Init)
		}
		add(st.Cond)
	case *ast.ForStmt:
		if st.Init != nil {
			add(st.Init)
		}
		if st.Cond != nil {
			add(st.Cond)
		}
		if st.Post != nil {
			add(st.Post)
		}
	case *ast.RangeStmt:
		add(st.X)
	case *ast.SwitchStmt:
		if st.Init != nil {
			add(st.Init)
		}
		if st.Tag != nil {
			add(st.Tag)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			add(st.Init)
		}
		add(st.Assign)
	case *ast.SelectStmt, *ast.BlockStmt:
		// Pure block containers: no header of their own.
	case *ast.LabeledStmt:
		return headerExprs(st.Stmt)
	default:
		// Assignments, expressions, returns, declarations, defers, gos:
		// the whole statement is straight-line code.
		add(s)
	}
	return h
}

// visitHeader walks a header node but does not descend into nested
// function literals or block statements (their bodies are independent
// statement lists).
func visitHeader(n ast.Node, f func(*ast.CallExpr) bool) (token.Pos, bool) {
	var hit token.Pos
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch cc := c.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false // nested list — scanned independently
		case *ast.CallExpr:
			if f(cc) {
				hit, found = cc.Pos(), true
				return false
			}
		}
		return true
	})
	return hit, found
}

func findCall(hdr []ast.Node, pred func(*ast.CallExpr) bool) (token.Pos, bool) {
	for _, n := range hdr {
		if pos, ok := visitHeader(n, pred); ok {
			return pos, true
		}
	}
	return 0, false
}

func findCountLoad(hdr []ast.Node) (token.Pos, bool) {
	return findCall(hdr, isCountLoad)
}

// isValidate matches the tree's validation funnel: a call to a plain
// identifier "valid" (the obs-counting wrapper) or to a method "Valid"
// (the raw lock call), however qualified.
func isValidate(c *ast.CallExpr) bool {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "valid"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Valid"
	}
	return false
}

// isStartRead matches a lease acquisition: any call to a method named
// "StartRead".
func isStartRead(c *ast.CallExpr) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "StartRead"
}

// isCountLoad matches "<expr>.count.Load(...)".
func isCountLoad(c *ast.CallExpr) bool {
	load, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || load.Sel.Name != "Load" {
		return false
	}
	count, ok := load.X.(*ast.SelectorExpr)
	return ok && count.Sel.Name == "count"
}
