#!/bin/sh
# cluster-smoke: end-to-end exercise of the sharded cluster (DESIGN.md
# §15). Starts three servebtree shards, each with a durable insert log,
# drives them through loadgen's cluster mode — the determinism gate
# checks the merged global contents — records the contents checksum,
# kill -9s one shard, recovers it from its log, and re-verifies the
# exact checksum: every acknowledged insert must survive the crash.
set -eu
GO=${GO:-go}
base=${CLUSTER_SMOKE_PORT:-40880}
a0="localhost:$base"
a1="localhost:$((base + 1))"
a2="localhost:$((base + 2))"
tmp=$(mktemp -d)
p0=
p1=
p2=
cleanup() {
	for p in "$p0" "$p1" "$p2"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/servebtree" ./cmd/servebtree
$GO build -o "$tmp/loadgen" ./cmd/loadgen

start_shard() { # $1 = shard id, $2 = address
	"$tmp/servebtree" -addr "$2" -shard-id "$1" -log "$tmp/shard-$1.log" \
		2>>"$tmp/shard-$1.err" &
}

wait_ready() { # $1 = address
	i=0
	until "$tmp/loadgen" -addr "$1" -clients 1 -requests 1 -writes 0 >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "cluster-smoke: shard never became reachable at $1" >&2
			cat "$tmp"/shard-*.err >&2
			exit 1
		fi
		sleep 0.1
	done
}

start_shard 0 "$a0"
p0=$!
start_shard 1 "$a1"
p1=$!
start_shard 2 "$a2"
p2=$!
wait_ready "$a0"
wait_ready "$a1"
wait_ready "$a2"

# Checksummed cluster run: routing, fan-out merge, and the determinism
# gate over the merged global contents.
"$tmp/loadgen" -addrs "$a0,$a1,$a2" -clients 4 -requests 150 -writes 25 \
	-batch 8 -space 4096 -seed 11 -json >"$tmp/run.json"
checksum=$(sed -n 's/.*"checksum": "\([0-9a-f]*\)".*/\1/p' "$tmp/run.json")
if [ -z "$checksum" ]; then
	echo "cluster-smoke: no checksum in the run document" >&2
	cat "$tmp/run.json" >&2
	exit 1
fi
if ! grep -q '"schema": "specbtree.bench.cluster.v1"' "$tmp/run.json"; then
	echo "cluster-smoke: run document carries the wrong schema" >&2
	exit 1
fi

# Kill shard 1 abruptly (no drain, no final sync beyond the per-epoch
# flushes) and recover it from its insert log on the same address.
kill -9 "$p1"
wait "$p1" 2>/dev/null || true
p1=
start_shard 1 "$a1"
p1=$!
wait_ready "$a1"
if ! grep -q "recovered shard 1:" "$tmp/shard-1.err"; then
	echo "cluster-smoke: restarted shard logged no recovery line" >&2
	cat "$tmp/shard-1.err" >&2
	exit 1
fi

# The recovered cluster must hold exactly the acknowledged contents.
# -space must match the run: the band map is a pure function of the
# address list and the key space, and scans read owned ranges only.
"$tmp/loadgen" -addrs "$a0,$a1,$a2" -space 4096 -verify "$checksum" >/dev/null

echo "cluster-smoke: ok"
