// Benchmarks regenerating, at go-test scale, every table and figure of
// the paper's evaluation (§4). Each benchmark family corresponds to one
// figure/table; the cmd/bench* executables run the same experiments with
// sweepable parameters and table output. See DESIGN.md §6 for the
// experiment index and EXPERIMENTS.md for recorded results.
package specbtree

import (
	"fmt"
	"sync"
	"testing"

	"specbtree/internal/bslack"
	"specbtree/internal/chashset"
	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/gbtree"
	"specbtree/internal/hashset"
	"specbtree/internal/masstree"
	"specbtree/internal/obslack"
	"specbtree/internal/palm"
	"specbtree/internal/rbtree"
	"specbtree/internal/relation"
	"specbtree/internal/seqbtree"
	"specbtree/internal/syncadapt"
	"specbtree/internal/tuple"
	"specbtree/internal/workload"
)

// benchPoints is the per-iteration element count for the figure 3/4
// benches (the paper uses 1e6..1e8; go-test iterations use 250²).
const benchPoints = 62500

type seqContestant struct {
	name string
	mk   func() seqOps
}

type seqOps struct {
	insert   func(tuple.Tuple) bool
	contains func(tuple.Tuple) bool
	scan     func(func(tuple.Tuple) bool)
}

func seqContestants() []seqContestant {
	return []seqContestant{
		{"google_btree", func() seqOps {
			t := gbtree.New(2)
			return seqOps{t.Insert, t.Contains, t.Scan}
		}},
		{"seq_btree", func() seqOps {
			t := seqbtree.New(2)
			h := seqbtree.NewHints()
			return seqOps{
				func(v tuple.Tuple) bool { return t.InsertHint(v, h) },
				func(v tuple.Tuple) bool { return t.ContainsHint(v, h) },
				t.Scan,
			}
		}},
		{"seq_btree_nh", func() seqOps {
			t := seqbtree.New(2)
			return seqOps{t.Insert, t.Contains, t.Scan}
		}},
		{"btree", func() seqOps {
			t := core.New(2)
			h := core.NewHints()
			return seqOps{
				func(v tuple.Tuple) bool { return t.InsertHint(v, h) },
				func(v tuple.Tuple) bool { return t.ContainsHint(v, h) },
				t.All,
			}
		}},
		{"btree_nh", func() seqOps {
			t := core.New(2)
			return seqOps{t.Insert, t.Contains, t.All}
		}},
		{"stl_rbtset", func() seqOps {
			t := rbtree.New(2)
			return seqOps{t.Insert, t.Contains, t.Scan}
		}},
		{"stl_hashset", func() seqOps {
			s := hashset.New(2)
			return seqOps{s.Insert, s.Contains, s.Scan}
		}},
		{"tbb_hashset", func() seqOps {
			s := chashset.New(2)
			return seqOps{s.Insert, s.Contains, s.Scan}
		}},
	}
}

func benchData(order string) []tuple.Tuple {
	pts := workload.Points2D(benchPoints)
	if order == "random" {
		return workload.Shuffle(pts, 1)
	}
	return pts
}

// benchSeqInsert is Figures 3a/3b.
func benchSeqInsert(b *testing.B, order string) {
	data := benchData(order)
	for _, c := range seqContestants() {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := c.mk()
				for _, t := range data {
					o.insert(t)
				}
			}
			b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

func BenchmarkFig3aInsertOrdered(b *testing.B) { benchSeqInsert(b, "sorted") }
func BenchmarkFig3bInsertRandom(b *testing.B)  { benchSeqInsert(b, "random") }

// benchSeqLookup is Figures 3c/3d.
func benchSeqLookup(b *testing.B, order string) {
	data := benchData(order)
	for _, c := range seqContestants() {
		b.Run(c.name, func(b *testing.B) {
			o := c.mk()
			for _, t := range data {
				o.insert(t)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, t := range data {
					if !o.contains(t) {
						b.Fatal("element missing")
					}
				}
			}
			b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

func BenchmarkFig3cLookupOrdered(b *testing.B) { benchSeqLookup(b, "sorted") }
func BenchmarkFig3dLookupRandom(b *testing.B)  { benchSeqLookup(b, "random") }

// benchScan is Figures 3e/3f (fill order affects the tree shape).
func benchScan(b *testing.B, order string) {
	data := benchData(order)
	for _, c := range seqContestants() {
		b.Run(c.name, func(b *testing.B) {
			o := c.mk()
			for _, t := range data {
				o.insert(t)
			}
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				o.scan(func(tuple.Tuple) bool {
					total++
					return true
				})
			}
			if total != len(data)*b.N {
				b.Fatalf("scan visited %d", total)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "entries/s")
		})
	}
}

func BenchmarkFig3eScanAfterOrdered(b *testing.B) { benchScan(b, "sorted") }
func BenchmarkFig3fScanAfterRandom(b *testing.B)  { benchScan(b, "random") }

// parContestants is the Figure 4 line-up.
type parContestant struct {
	name string
	mk   func() (worker func(part []tuple.Tuple), finish func() int)
}

func parContestants() []parContestant {
	return []parContestant{
		{"btree", func() (func([]tuple.Tuple), func() int) {
			t := core.New(2)
			return func(part []tuple.Tuple) {
				h := core.NewHints()
				for _, v := range part {
					t.InsertHint(v, h)
				}
			}, t.Len
		}},
		{"btree_nh", func() (func([]tuple.Tuple), func() int) {
			t := core.New(2)
			return func(part []tuple.Tuple) {
				for _, v := range part {
					t.Insert(v)
				}
			}, t.Len
		}},
		{"google_btree_locked", func() (func([]tuple.Tuple), func() int) {
			t := syncadapt.NewLocked(2)
			return func(part []tuple.Tuple) {
				for _, v := range part {
					t.Insert(v)
				}
			}, t.Len
		}},
		{"reduction_btree", func() (func([]tuple.Tuple), func() int) {
			r := syncadapt.NewReduction(2)
			return func(part []tuple.Tuple) {
				w := r.NewWorker()
				for _, v := range part {
					w.Insert(v)
				}
			}, func() int { r.Merge(); return r.Len() }
		}},
		{"tbb_hashset", func() (func([]tuple.Tuple), func() int) {
			s := chashset.New(2)
			return func(part []tuple.Tuple) {
				for _, v := range part {
					s.Insert(v)
				}
			}, s.Len
		}},
	}
}

// benchParInsert is Figure 4 (a-d): concurrent insertion with the worker
// count pinned to GOMAXPROCS via go test -cpu.
func benchParInsert(b *testing.B, order string, threads int) {
	data := benchData(order)
	parts := workload.Partition(data, threads)
	for _, c := range parContestants() {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				worker, finish := c.mk()
				var wg sync.WaitGroup
				for _, part := range parts {
					wg.Add(1)
					go func(part []tuple.Tuple) {
						defer wg.Done()
						worker(part)
					}(part)
				}
				wg.Wait()
				if got := finish(); got != len(data) {
					b.Fatalf("lost elements: %d of %d", got, len(data))
				}
			}
			b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

func BenchmarkFig4aParallelInsertOrdered2T(b *testing.B) { benchParInsert(b, "sorted", 2) }
func BenchmarkFig4bParallelInsertRandom2T(b *testing.B)  { benchParInsert(b, "random", 2) }
func BenchmarkFig4cParallelInsertOrdered4T(b *testing.B) { benchParInsert(b, "sorted", 4) }
func BenchmarkFig4dParallelInsertRandom4T(b *testing.B)  { benchParInsert(b, "random", 4) }

// benchEngine is Figure 5: whole-engine evaluation with swapped relation
// representations.
func benchEngine(b *testing.B, w workload.DatalogWorkload, threads int) {
	prog := datalog.MustParse(w.Source)
	for _, name := range []string{"btree", "btree-nh", "rbtset", "hashset", "gbtree", "tbbhash"} {
		provider := relation.MustLookup(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := datalog.New(prog, datalog.Options{Provider: provider, Workers: threads})
				if err != nil {
					b.Fatal(err)
				}
				for rel, facts := range w.Facts {
					if err := eng.AddFacts(rel, facts); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				if eng.Count(w.Outputs[0]) == 0 {
					b.Fatal("degenerate workload")
				}
			}
		})
	}
}

func BenchmarkFig5aDoopPointsTo(b *testing.B) {
	benchEngine(b, workload.PointsTo(128, 1), 2)
}

func BenchmarkFig5bSecurityAnalysis(b *testing.B) {
	benchEngine(b, workload.Security(256, 1), 2)
}

// BenchmarkTable3 compares the concurrent trees on scalar-key insertion.
func benchTable3(b *testing.B, ordered bool, threads int) {
	const n = 100000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if !ordered {
		rng := workload.Shuffle(workload.Scalars(n), 1)
		for i, t := range rng {
			keys[i] = t[0]
		}
	}
	chunk := (n + threads - 1) / threads
	type treeCase struct {
		name string
		mk   func() (func(uint64) bool, func() int)
	}
	cases := []treeCase{
		{"btree", func() (func(uint64) bool, func() int) {
			t := core.New(1)
			return func(k uint64) bool { return t.Insert(tuple.Tuple{k}) }, t.Len
		}},
		{"palm", func() (func(uint64) bool, func() int) {
			t := palm.New()
			return t.Insert, func() int { t.Flush(); return t.Len() }
		}},
		{"masstree", func() (func(uint64) bool, func() int) {
			t := masstree.New()
			return t.Insert, t.Len
		}},
		{"bslack", func() (func(uint64) bool, func() int) {
			t := bslack.New()
			return t.Insert, t.Len
		}},
		// The paper's §5 future-work proposal, implemented: a B-slack-style
		// tree on the optimistic locking scheme.
		{"bslack_opt", func() (func(uint64) bool, func() int) {
			t := obslack.New()
			return t.Insert, t.Len
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insert, finish := c.mk()
				var wg sync.WaitGroup
				for lo := 0; lo < n; lo += chunk {
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					wg.Add(1)
					go func(part []uint64) {
						defer wg.Done()
						for _, k := range part {
							insert(k)
						}
					}(keys[lo:hi])
				}
				wg.Wait()
				if got := finish(); got != n {
					b.Fatalf("lost elements: %d of %d", got, n)
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

func BenchmarkTable3Ordered1T(b *testing.B) { benchTable3(b, true, 1) }
func BenchmarkTable3Ordered4T(b *testing.B) { benchTable3(b, true, 4) }
func BenchmarkTable3Random1T(b *testing.B)  { benchTable3(b, false, 1) }
func BenchmarkTable3Random4T(b *testing.B)  { benchTable3(b, false, 4) }

// Ablation benches: the design choices DESIGN.md calls out.

// BenchmarkAblationNodeCapacity sweeps the B-tree node capacity.
func BenchmarkAblationNodeCapacity(b *testing.B) {
	data := benchData("random")
	for _, capacity := range []int{4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := core.New(2, core.Options{Capacity: capacity})
				for _, v := range data {
					t.Insert(v)
				}
			}
			b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

// BenchmarkAblationHintsOrderedLookup isolates the hint benefit on the
// paper's best case: ordered membership probes (the ~6x of Figure 3c).
func BenchmarkAblationHintsOrderedLookup(b *testing.B) {
	data := benchData("sorted")
	t := core.New(2)
	for _, v := range data {
		t.Insert(v)
	}
	b.Run("hints", func(b *testing.B) {
		h := core.NewHints()
		for i := 0; i < b.N; i++ {
			for _, v := range data {
				if !t.ContainsHint(v, h) {
					b.Fatal("missing")
				}
			}
		}
		b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("nohints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range data {
				if !t.Contains(v) {
					b.Fatal("missing")
				}
			}
		}
		b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkAblationLockScheme compares the optimistic lock against a
// plain mutex and RWMutex protecting the same sequential tree under
// 4-way concurrent insertion.
func BenchmarkAblationLockScheme(b *testing.B) {
	data := benchData("random")
	parts := workload.Partition(data, 4)
	run := func(b *testing.B, mk func() (func(tuple.Tuple), func() int)) {
		for i := 0; i < b.N; i++ {
			insert, finish := mk()
			var wg sync.WaitGroup
			for _, part := range parts {
				wg.Add(1)
				go func(part []tuple.Tuple) {
					defer wg.Done()
					for _, v := range part {
						insert(v)
					}
				}(part)
			}
			wg.Wait()
			if got := finish(); got != len(data) {
				b.Fatalf("lost elements: %d", got)
			}
		}
		b.ReportMetric(float64(len(data)*b.N)/b.Elapsed().Seconds(), "inserts/s")
	}
	b.Run("optimistic", func(b *testing.B) {
		run(b, func() (func(tuple.Tuple), func() int) {
			t := core.New(2)
			return func(v tuple.Tuple) { t.Insert(v) }, t.Len
		})
	})
	b.Run("global_mutex", func(b *testing.B) {
		run(b, func() (func(tuple.Tuple), func() int) {
			t := seqbtree.New(2)
			var mu sync.Mutex
			return func(v tuple.Tuple) {
				mu.Lock()
				t.Insert(v)
				mu.Unlock()
			}, t.Len
		})
	})
	b.Run("global_rwmutex", func(b *testing.B) {
		run(b, func() (func(tuple.Tuple), func() int) {
			t := seqbtree.New(2)
			var mu sync.RWMutex
			return func(v tuple.Tuple) {
				mu.Lock()
				t.Insert(v)
				mu.Unlock()
			}, t.Len
		})
	})
}

// BenchmarkAblationMerge compares the specialised structure-aware merge
// against tuple-by-tuple re-insertion.
func BenchmarkAblationMerge(b *testing.B) {
	src := core.New(2)
	for _, v := range benchData("sorted") {
		src.Insert(v)
	}
	b.Run("specialised", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst := core.New(2)
			dst.InsertAll(src)
			if dst.Len() != src.Len() {
				b.Fatal("merge lost elements")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst := core.New(2)
			src.All(func(v tuple.Tuple) bool {
				dst.Insert(v)
				return true
			})
			if dst.Len() != src.Len() {
				b.Fatal("merge lost elements")
			}
		}
	})
}
