# Convenience targets for building, testing and regenerating the paper's
# evaluation. Everything is plain `go` underneath; see README.md.

GO ?= go

.PHONY: all build vet lint check-docs test obsoff race check-harness bench bench-smoke bench-json bench-json-merge bench-json-serve bench-json-datalog bench-json-cluster serve-smoke trace-smoke cluster-smoke replica-smoke figures examples clean

all: build lint test obsoff race check-harness check-docs bench-smoke serve-smoke trace-smoke cluster-smoke replica-smoke

build:
	$(GO) build ./...

# obsoff proves the observability layer compiles out cleanly: the whole
# module must build and its tests pass with every counter, histogram and
# flight-recorder call reduced to a no-op.
obsoff:
	$(GO) build -tags obsoff ./...
	$(GO) test -tags obsoff ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files, vet findings, or load-after-validate
# ordering bugs in the tree's optimistic read paths (scripts/checkorder,
# the PR 3 lesson — see DESIGN.md §10).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./scripts/checkorder ./internal/core

# check-docs enforces doc comments on the public surface and keeps the
# DESIGN.md §9 counter table in sync with internal/obs.
check-docs:
	./scripts/check_docs.sh

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector:
# the lock, the tree (including the live shape walker and the bound-query
# contract stress test), the parallel merge dispatch, the engine's
# parallel data-movement spine, the observability registries, the debug
# server that reads them while workers run, the network serving
# subsystem (phase scheduler, pipelined client, slow-client teardown),
# and the replication subsystem (leader-side streamers, follower apply
# loop, promotion).
race:
	$(GO) test -race ./internal/optlock ./internal/core ./internal/relation ./internal/datalog ./internal/obs ./internal/obshttp ./internal/check ./internal/serve ./internal/cluster ./internal/replica

# check-harness runs the concurrent-correctness harness (DESIGN.md §10)
# in short mode under the race detector, in both build flavours: the
# differential oracle against every provider — including the
# serve-socket target, which drives the §11 relation server over real
# loopback connections, and the cluster target, which injects a shard
# kill-and-recover and a live rebalance into the oracle schedule
# (DESIGN.md §15) — and, under the lockinject tag, the fault-injection
# suite, including the deterministic reproduction of the PR 3
# load-after-validate race against the preserved pre-fix bound path.
# The logcrash leg re-runs the shard log suite with crash injection
# compiled in: every kill-point test proves hardened replay recovers
# exactly the acknowledged prefix where naive replay diverges.
check-harness:
	$(GO) test -short -race ./internal/check
	$(GO) test -short -race -tags lockinject ./internal/check ./internal/optlock
	$(GO) test -short -race -tags logcrash ./internal/cluster

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs the merge benchmark at a toy size as part of `all`:
# it exercises the sequential-vs-parallel merge, the sharded AddFacts
# path and the evaluation anchor, and aborts on any worker-count-
# dependent difference in their results.
bench-smoke:
	$(GO) run ./cmd/benchmerge -size 20000 -load 6000 -evalsize 8 -workers 1,2 -reps 1 >/dev/null

# serve-smoke exercises the network serving subsystem end to end as
# part of `all`: servebtree on a loopback port, a mixed loadgen run
# whose determinism gate verifies the final relation contents, and a
# SIGTERM graceful drain (DESIGN.md §11).
serve-smoke:
	./scripts/serve_smoke.sh

# trace-smoke exercises the evaluation tracer end to end as part of
# `all` (DESIGN.md §13): servebtree and loadgen with sampling armed,
# the /debug/trace scrape, and a datalog -trace file dump — each
# validated as well-formed trace_event JSON by scripts/checktrace.
trace-smoke:
	./scripts/trace_smoke.sh

# cluster-smoke exercises the sharded cluster end to end as part of
# `all` (DESIGN.md §15): three servebtree shards with durable insert
# logs, a checksummed loadgen cluster run, a kill -9 of one shard, log
# recovery on the same address, and re-verification of the exact
# contents checksum.
cluster-smoke:
	./scripts/cluster_smoke.sh

# replica-smoke exercises follower replication end to end as part of
# `all` (DESIGN.md §16): a leader shard with a durable log plus two
# servebtree -follower-of read replicas, a checksummed loadgen run with
# reads offloaded under a staleness bound, a kill -9 of the leader, a
# SIGHUP promotion of one follower (catching up from the dead leader's
# log), and re-verification of the exact contents checksum on the
# promoted leader.
replica-smoke:
	./scripts/replica_smoke.sh

# bench-json regenerates the checked-in benchmark documents: the pinned
# merge-scaling run (>= 1M-tuple source, specbtree.bench.merge.v1), the
# pinned serving-layer run (specbtree.bench.serve.v1), the pinned
# evaluation-strategy comparison (specbtree.bench.datalog.v1), and the
# pinned sharded-cluster run (specbtree.bench.cluster.v1). Figures only
# mean something relative to the recorded cpus/gomaxprocs fields — see
# EXPERIMENTS.md.
bench-json: bench-json-merge bench-json-serve bench-json-datalog bench-json-cluster

bench-json-merge:
	$(GO) run ./cmd/benchmerge -size 1200000 -load 200000 -evalsize 24 -workers 1,2,8 -json > BENCH_merge.json

bench-json-serve:
	./scripts/bench_serve_json.sh > BENCH_serve.json

bench-json-datalog:
	$(GO) run ./cmd/benchdatalog -size 2048 -threads 1 -rounds 5 -json > BENCH_datalog.json

bench-json-cluster:
	./scripts/bench_cluster_json.sh > BENCH_cluster.json

# Regenerate every table and figure of the paper (laptop-scale defaults;
# see EXPERIMENTS.md for the flags matching the paper's full sizes).
figures:
	$(GO) run ./cmd/benchseq
	$(GO) run ./cmd/benchpar -threads 1,2,4,8
	$(GO) run ./cmd/benchdatalog -stats
	$(GO) run ./cmd/benchtrees

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transitiveclosure
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/netsecurity
	$(GO) run ./examples/samegeneration

clean:
	$(GO) clean ./...
