# Convenience targets for building, testing and regenerating the paper's
# evaluation. Everything is plain `go` underneath; see README.md.

GO ?= go

.PHONY: all build vet lint check-docs test obsoff race bench figures examples clean

all: build lint test obsoff race check-docs

build:
	$(GO) build ./...

# obsoff proves the observability layer compiles out cleanly: the whole
# module must build and its tests pass with every counter, histogram and
# flight-recorder call reduced to a no-op.
obsoff:
	$(GO) build -tags obsoff ./...
	$(GO) test -tags obsoff ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files or vet findings.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# check-docs enforces doc comments on the public surface and keeps the
# DESIGN.md §9 counter table in sync with internal/obs.
check-docs:
	./scripts/check_docs.sh

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector:
# the lock, the tree (including the live shape walker), the observability
# registries and the debug server that reads them while workers run.
race:
	$(GO) test -race ./internal/optlock ./internal/core ./internal/obs ./internal/obshttp

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (laptop-scale defaults;
# see EXPERIMENTS.md for the flags matching the paper's full sizes).
figures:
	$(GO) run ./cmd/benchseq
	$(GO) run ./cmd/benchpar -threads 1,2,4,8
	$(GO) run ./cmd/benchdatalog -stats
	$(GO) run ./cmd/benchtrees

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transitiveclosure
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/netsecurity
	$(GO) run ./examples/samegeneration

clean:
	$(GO) clean ./...
