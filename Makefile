# Convenience targets for building, testing and regenerating the paper's
# evaluation. Everything is plain `go` underneath; see README.md.

GO ?= go

.PHONY: all build vet lint check-docs test race bench figures examples clean

all: build lint test check-docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files or vet findings.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# check-docs enforces doc comments on the public surface and keeps the
# DESIGN.md §9 counter table in sync with internal/obs.
check-docs:
	./scripts/check_docs.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (laptop-scale defaults;
# see EXPERIMENTS.md for the flags matching the paper's full sizes).
figures:
	$(GO) run ./cmd/benchseq
	$(GO) run ./cmd/benchpar -threads 1,2,4,8
	$(GO) run ./cmd/benchdatalog -stats
	$(GO) run ./cmd/benchtrees

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transitiveclosure
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/netsecurity
	$(GO) run ./examples/samegeneration

clean:
	$(GO) clean ./...
