# Convenience targets for building, testing and regenerating the paper's
# evaluation. Everything is plain `go` underneath; see README.md.

GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (laptop-scale defaults;
# see EXPERIMENTS.md for the flags matching the paper's full sizes).
figures:
	$(GO) run ./cmd/benchseq
	$(GO) run ./cmd/benchpar -threads 1,2,4,8
	$(GO) run ./cmd/benchdatalog -stats
	$(GO) run ./cmd/benchtrees

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transitiveclosure
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/netsecurity
	$(GO) run ./examples/samegeneration

clean:
	$(GO) clean ./...
